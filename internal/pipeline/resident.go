package pipeline

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/integrity"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// ResidentDB is a target database packed once and kept in memory for
// the lifetime of a service process: the FASTA stream is chunked into
// the same residue-budgeted batches a one-shot -stream run would
// produce, so every query against it schedules identical work units —
// the property that makes served hit tables byte-identical to the
// one-shot CLI's. Hash fingerprints the raw input bytes and feeds the
// result-cache key.
type ResidentDB struct {
	// Name is the caller's handle for the database (the serve-layer
	// registry key).
	Name string
	// Hash is the SHA-256 of the raw FASTA bytes as read, before
	// parsing — a content fingerprint, not a path.
	Hash [32]byte
	// Batches holds the pre-parsed residue-budgeted batches in stream
	// order.
	Batches []*seq.Database
	// Seqs and Residues are stream-wide totals.
	Seqs     int
	Residues int64
	// BatchResidues is the residue budget the batches were cut with.
	BatchResidues int64
}

// LoadResidentDB parses a FASTA stream into a resident database,
// chunked with the given residue budget (the same chunker as the
// streaming engines, so batch boundaries match a -stream run with the
// same budget) and hashed over the raw bytes.
func LoadResidentDB(name string, r io.Reader, abc *alphabet.Alphabet, batchResidues int64) (*ResidentDB, error) {
	if batchResidues < 1 {
		return nil, fmt.Errorf("pipeline: resident batch residues %d < 1", batchResidues)
	}
	h := sha256.New()
	rdb := &ResidentDB{Name: name, BatchResidues: batchResidues}
	err := seq.StreamFASTAResidues(io.TeeReader(r, h), abc, batchResidues, func(db *seq.Database) error {
		rdb.Batches = append(rdb.Batches, db)
		rdb.Seqs += db.NumSeqs()
		rdb.Residues += db.TotalResidues()
		return nil
	})
	if err != nil {
		return nil, err
	}
	copy(rdb.Hash[:], h.Sum(nil))
	return rdb, nil
}

// RunResidentStreamContext searches a resident database across the
// devices of a system with the streamed multi-device engine: the same
// scheduler, fault policy, exactly-once commit tokens, integrity
// guards, and host-CPU fallback as RunMultiGPUStreamContext, minus the
// FASTA parsing (batches are already resident) and minus journaling
// (a service query is retried by its client, not resumed from disk;
// cfg.Checkpoint is rejected). Devices that quarantine mid-run drain
// the remaining batches onto the host CPU, and because both engines
// are deterministic the degraded result is byte-identical.
func (pl *Pipeline) RunResidentStreamContext(ctx context.Context, sys *simt.System, mem gpu.MemConfig, rdb *ResidentDB, cfg StreamConfig) (*Result, error) {
	if rdb == nil || len(rdb.Batches) == 0 {
		return nil, fmt.Errorf("pipeline: resident database is empty")
	}
	if sys == nil || len(sys.Devices) == 0 {
		return nil, fmt.Errorf("pipeline: no devices")
	}
	if cfg.Checkpoint != nil {
		return nil, fmt.Errorf("pipeline: resident runs do not journal (checkpointing is the one-shot CLI's crash story; a service query is simply retried)")
	}
	pl.attachProfiler(mem, sys.Devices...)

	workers := make([]*gpu.DeviceWorker, len(sys.Devices))
	for i, dev := range sys.Devices {
		workers[i] = gpu.NewDeviceWorker(dev, mem, pl.Opts.Workers, pl.MSV, pl.Vit)
	}

	root := pl.startSearch("resident-stream", nil)
	defer root.End()

	final := &Result{}
	extra := &MultiGPUStreamExtra{Launches: make([][]*simt.LaunchReport, len(sys.Devices))}
	var mu sync.Mutex

	sched := &gpu.Scheduler{
		Sys:             sys,
		QueueDepth:      cfg.QueueDepth,
		Trace:           root,
		MaxRetries:      cfg.MaxRetries,
		QuarantineAfter: cfg.QuarantineAfter,
		BatchTimeout:    cfg.BatchTimeout,
		Drain:           cfg.Drain,
	}
	commitMerge := func(b gpu.Batch, res *Result, devIdx int, launches []*simt.LaunchReport) (bool, error) {
		if !b.Commit() {
			return false, nil
		}
		mu.Lock()
		defer mu.Unlock()
		mergeBatch(final, res, b.Offset)
		if devIdx >= 0 {
			extra.Launches[devIdx] = append(extra.Launches[devIdx], launches...)
		}
		return true, nil
	}
	hostRerun := func(b gpu.Batch) (bool, error) {
		res, err := pl.runCPUContext(ctx, b.DB, b.Trace)
		if err != nil {
			return false, err
		}
		return commitMerge(b, res, -1, nil)
	}
	if !cfg.DisableFallback {
		sched.Fallback = hostRerun
	}
	var chk *integrity.Checker
	if cfg.Verify != VerifyOff {
		chk = &integrity.Checker{MSV: pl.MSV, Vit: pl.Vit}
	}
	if cfg.Verify == VerifyDMR {
		sched.DMR = hostRerun
	}
	rep, err := sched.RunBatches(ctx,
		func(submit func(b gpu.Batch) error) error {
			offset := 0
			for i, db := range rdb.Batches {
				if err := submit(gpu.Batch{Seq: i, Offset: offset, DB: db}); err != nil {
					return err
				}
				offset += db.NumSeqs()
			}
			return nil
		},
		func(devIdx int, _ *simt.Device, b gpu.Batch) error {
			res, launches, err := pl.searchBatchOnDevice(ctx, workers[devIdx], b.DB, chk, b.Trace)
			if err != nil {
				return err
			}
			_, err = commitMerge(b, res, devIdx, launches)
			return err
		})
	if err != nil {
		return nil, err
	}
	extra.Schedule = rep
	extra.Drained = rep.Drained
	finalizeStream(final, rep.Seqs)
	final.Extra = extra
	if reg := pl.Opts.Metrics; reg.Enabled() {
		final.Record(reg)
		var all []*simt.LaunchReport
		for _, launches := range extra.Launches {
			all = append(all, launches...)
		}
		perf.Record(reg, sys.Devices[0].Spec, "resident", all...)
	}
	return final, nil
}

// RunResidentCPUContext searches a resident database entirely on the
// host CPU — the fully-degraded service path when every device in the
// pool is cordoned. Batch boundaries and the merge/finalize sequence
// match the device path exactly, so the hits are byte-identical.
func (pl *Pipeline) RunResidentCPUContext(ctx context.Context, rdb *ResidentDB) (*Result, error) {
	if rdb == nil || len(rdb.Batches) == 0 {
		return nil, fmt.Errorf("pipeline: resident database is empty")
	}
	root := pl.startSearch("resident-cpu", nil)
	defer root.End()
	final := &Result{}
	offset := 0
	for i, db := range rdb.Batches {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batchSpan := root.Child(fmt.Sprintf("batch %d", i),
			obs.Int("batch", int64(i)),
			obs.Int("offset", int64(offset)),
			obs.Int("seqs", int64(db.NumSeqs())),
			obs.Int("residues", db.TotalResidues()))
		res, err := pl.runCPUContext(ctx, db, batchSpan)
		batchSpan.End()
		if err != nil {
			return nil, err
		}
		mergeBatch(final, res, offset)
		offset += db.NumSeqs()
	}
	finalizeStream(final, rdb.Seqs)
	final.Record(pl.Opts.Metrics)
	return final, nil
}
