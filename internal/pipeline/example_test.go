package pipeline_test

import (
	"fmt"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/pipeline"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

// Example runs the three-stage hmmsearch pipeline on a simulated GPU
// against a small synthetic database with planted homologs.
func Example() {
	abc := alphabet.New()
	query, err := workload.Model("family", 80, abc, 3)
	if err != nil {
		panic(err)
	}
	spec := workload.EnvnrLike(0.0001, 4)
	spec.HomologFrac = 0.05
	db, err := workload.Generate(spec, query, abc)
	if err != nil {
		panic(err)
	}

	pl, err := pipeline.New(query, int(db.MeanLen()), pipeline.DefaultOptions())
	if err != nil {
		panic(err)
	}
	res, err := pl.RunGPU(simt.NewDevice(simt.TeslaK40()), gpu.MemAuto, db)
	if err != nil {
		panic(err)
	}

	planted := int(0.05*float64(db.NumSeqs()) + 0.5)
	fmt.Printf("recovered all planted homologs: %v\n", len(res.Hits) >= planted)
	// Output: recovered all planted homologs: true
}
