package pipeline

import (
	"bytes"
	"math"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

var abc = alphabet.New()

func testPipeline(t testing.TB, m, targetLen int) *Pipeline {
	t.Helper()
	h, err := workload.Model("pipe", m, abc, int64(m))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, targetLen, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPipelinePassFractionsMatchThresholds(t *testing.T) {
	// On a homolog-free random database the MSV stage must pass ~2% of
	// sequences (the paper's Figure 1 reports 2.2% on Env_nr) and the
	// Viterbi stage must cut survivors much further.
	h, err := workload.Model("pf", 120, abc, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0004, 2) // ~2600 seqs
	spec.HomologFrac = 0
	db, err := workload.Generate(spec, nil, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	frac := res.MSV.PassFraction()
	if frac < 0.005 || frac > 0.06 {
		t.Errorf("MSV pass fraction %.4f, want ~0.02", frac)
	}
	if res.Viterbi.Out > res.MSV.Out/2 {
		t.Errorf("Viterbi passed %d of %d; should cut much deeper", res.Viterbi.Out, res.Viterbi.In)
	}
	if len(res.Hits) > db.NumSeqs()/100 {
		t.Errorf("%d hits on a random database", len(res.Hits))
	}
}

func TestPipelineFindsPlantedHomologs(t *testing.T) {
	h, err := workload.Model("hom", 90, abc, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.SwissprotLike(0.002, 4) // ~919 seqs
	spec.HomologFrac = 0.05
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	planted := int(0.05 * float64(db.NumSeqs()))
	if len(res.Hits) < planted/2 {
		t.Errorf("found %d hits, planted ~%d homologs", len(res.Hits), planted)
	}
	// Hits must be sorted by E-value.
	for i := 1; i < len(res.Hits); i++ {
		if res.Hits[i].EValue < res.Hits[i-1].EValue {
			t.Fatal("hits not sorted by E-value")
		}
	}
	for _, hit := range res.Hits {
		if hit.EValue < 0 || math.IsNaN(hit.EValue) {
			t.Errorf("hit %s has E-value %g", hit.Name, hit.EValue)
		}
		if hit.Name == "" || hit.Index < 0 || hit.Index >= db.NumSeqs() {
			t.Errorf("malformed hit %+v", hit)
		}
	}
}

func TestGPUEngineAgreesWithCPU(t *testing.T) {
	// The accelerated pipeline must keep the sensitivity and accuracy
	// of the CPU pipeline: identical survivors at every stage and
	// identical final hits (the paper's "while preserving the
	// sensitivity and accuracy of HMMER 3.0").
	h, err := workload.Model("agree", 80, abc, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0002, 6)
	spec.HomologFrac = 0.03
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cpuRes, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	dev := simt.NewDevice(simt.TeslaK40())
	gpuRes, err := pl.RunGPU(dev, gpu.MemAuto, db)
	if err != nil {
		t.Fatal(err)
	}
	if cpuRes.MSV.Out != gpuRes.MSV.Out || cpuRes.Viterbi.Out != gpuRes.Viterbi.Out {
		t.Fatalf("stage survivors differ: cpu %d/%d vs gpu %d/%d",
			cpuRes.MSV.Out, cpuRes.Viterbi.Out, gpuRes.MSV.Out, gpuRes.Viterbi.Out)
	}
	if len(cpuRes.Hits) != len(gpuRes.Hits) {
		t.Fatalf("hit counts differ: %d vs %d", len(cpuRes.Hits), len(gpuRes.Hits))
	}
	for i := range cpuRes.Hits {
		c, g := cpuRes.Hits[i], gpuRes.Hits[i]
		if c.Index != g.Index || c.MSVBits != g.MSVBits || c.VitBits != g.VitBits || c.FwdBits != g.FwdBits {
			t.Errorf("hit %d differs: cpu %+v vs gpu %+v", i, c, g)
		}
	}
	extra, ok := gpuRes.Extra.(*GPUExtra)
	if !ok || extra.MSVReport == nil {
		t.Error("GPU extra reports missing")
	}
}

func TestMultiGPUEngineAgreesWithCPU(t *testing.T) {
	h, err := workload.Model("multi", 64, abc, 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.SwissprotLike(0.001, 8)
	spec.HomologFrac = 0.04
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cpuRes, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	sys := simt.NewSystem(simt.GTX580(), 4)
	mRes, err := pl.RunMultiGPU(sys, gpu.MemAuto, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpuRes.Hits) != len(mRes.Hits) {
		t.Fatalf("hit counts differ: %d vs %d", len(cpuRes.Hits), len(mRes.Hits))
	}
	for i := range cpuRes.Hits {
		if cpuRes.Hits[i].Index != mRes.Hits[i].Index {
			t.Errorf("hit %d index differs", i)
		}
	}
}

func TestStageCellAccounting(t *testing.T) {
	h, err := workload.Model("cells", 50, abc, 9)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0001, 10)
	spec.HomologFrac = 0
	db, err := workload.Generate(spec, nil, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSV.Cells != db.TotalResidues()*50 {
		t.Errorf("MSV cells %d", res.MSV.Cells)
	}
	if res.Viterbi.Cells > res.MSV.Cells || res.Forward.Cells > res.Viterbi.Cells {
		t.Error("stage cells should shrink down the pipeline")
	}
}

func TestNewValidation(t *testing.T) {
	h, err := workload.Model("val", 20, abc, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(h, 0, DefaultOptions()); err == nil {
		t.Error("target length 0 accepted")
	}
	h.Mat[3][0] = 7 // corrupt
	if _, err := New(h, 100, DefaultOptions()); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestCalibrationSeparatesStages(t *testing.T) {
	pl := testPipeline(t, 70, 200)
	// The three fitted distributions must be sane and distinct.
	if pl.MSVGumbel.Lambda != pl.VitGumbel.Lambda {
		t.Error("lambdas should both be log 2")
	}
	if math.IsNaN(pl.MSVGumbel.Mu) || math.IsNaN(pl.VitGumbel.Mu) || math.IsNaN(pl.FwdExp.Tau) {
		t.Error("calibration produced NaN")
	}
	// A random score near mu must have a large P-value; a score far
	// above must have a small one.
	if p := pl.MSVGumbel.Surv(pl.MSVGumbel.Mu + 30); p > 1e-6 {
		t.Errorf("strong score P-value %g", p)
	}
}

func TestComputeAlignments(t *testing.T) {
	h, err := workload.Model("aln", 60, abc, 13)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0001, 14)
	spec.HomologFrac = 0.05
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ComputeAlignments = true
	pl, err := New(h, int(db.MeanLen()), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits to annotate")
	}
	for _, hit := range res.Hits {
		if len(hit.Domains) == 0 {
			t.Errorf("hit %s has no domain alignments", hit.Name)
			continue
		}
		for _, d := range hit.Domains {
			if len(d.Model) != len(d.Target) || len(d.Model) != len(d.Match) {
				t.Errorf("hit %s: ragged alignment rows", hit.Name)
			}
			if d.SeqFrom < 1 || d.SeqTo < d.SeqFrom || d.HMMFrom < 1 || d.HMMTo > pl.Prof.M {
				t.Errorf("hit %s: bad coordinates %+v", hit.Name, d)
			}
		}
		if len(hit.Envelopes) == 0 {
			t.Errorf("hit %s has no posterior envelopes", hit.Name)
		}
	}
}

func TestGPUForwardStageAgreesWithHost(t *testing.T) {
	// The heterogeneous extension: Forward on the device must retrieve
	// the same hits as the host Forward stage, with bit scores within
	// float32 accumulation error.
	h, err := workload.Model("gfwd", 70, abc, 15)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0002, 16)
	spec.HomologFrac = 0.03
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dev := simt.NewDevice(simt.TeslaK40())
	hostRes, err := pl.RunGPU(dev, gpu.MemAuto, db)
	if err != nil {
		t.Fatal(err)
	}
	pl.Opts.GPUForward = true
	devRes, err := pl.RunGPU(simt.NewDevice(simt.TeslaK40()), gpu.MemAuto, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(hostRes.Hits) != len(devRes.Hits) {
		t.Fatalf("hit counts differ: host %d vs device %d", len(hostRes.Hits), len(devRes.Hits))
	}
	for i := range hostRes.Hits {
		a, b := hostRes.Hits[i], devRes.Hits[i]
		if a.Index != b.Index {
			t.Fatalf("hit %d index differs", i)
		}
		if math.Abs(a.FwdBits-b.FwdBits) > 1e-2*(1+math.Abs(a.FwdBits)) {
			t.Errorf("hit %d: fwd bits %g vs %g", i, a.FwdBits, b.FwdBits)
		}
	}
	extra := devRes.Extra.(*GPUExtra)
	if extra.FwdReport == nil {
		t.Error("device Forward report missing")
	}
}

func TestNull2ReducesScores(t *testing.T) {
	h, err := workload.Model("n2", 60, abc, 17)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0002, 18)
	spec.HomologFrac = 0.03
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := base.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.UseNull2 = true
	corrected, err := New(h, int(db.MeanLen()), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := corrected.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) > len(plain.Hits) {
		t.Errorf("null2 added hits: %d vs %d", len(res.Hits), len(plain.Hits))
	}
	if len(res.Hits) == 0 {
		t.Fatal("null2 removed every hit")
	}
	plainBits := map[int]float64{}
	for _, hh := range plain.Hits {
		plainBits[hh.Index] = hh.FwdBits
	}
	for _, hh := range res.Hits {
		orig, ok := plainBits[hh.Index]
		if !ok {
			t.Errorf("hit %s appears only with null2", hh.Name)
			continue
		}
		if hh.FwdBits > orig+1e-9 {
			t.Errorf("hit %s: null2 raised the score %.3f -> %.3f", hh.Name, orig, hh.FwdBits)
		}
	}
}

func TestRunCPUStreamMatchesRunCPU(t *testing.T) {
	h, err := workload.Model("stream", 50, abc, 19)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0002, 20)
	spec.HomologFrac = 0.03
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	whole, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := seq.WriteFASTA(&buf, db, abc); err != nil {
		t.Fatal(err)
	}
	streamed, err := pl.RunCPUStream(&buf, 97)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.MSV.In != whole.MSV.In || streamed.MSV.Out != whole.MSV.Out ||
		streamed.Viterbi.Out != whole.Viterbi.Out {
		t.Fatalf("stage stats differ: %+v vs %+v", streamed.MSV, whole.MSV)
	}
	if len(streamed.Hits) != len(whole.Hits) {
		t.Fatalf("hit counts differ: %d vs %d", len(streamed.Hits), len(whole.Hits))
	}
	for i := range whole.Hits {
		a, b := whole.Hits[i], streamed.Hits[i]
		if a.Index != b.Index || a.FwdBits != b.FwdBits || a.EValue != b.EValue {
			t.Errorf("hit %d differs: %+v vs %+v", i, a, b)
		}
	}
}
