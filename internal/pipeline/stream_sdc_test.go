package pipeline

import (
	"bytes"
	"testing"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/integrity"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// runSDCStream runs the fixture stream on a single GTX 580 (one
// device keeps the launch order, and so the seeded flip schedule,
// fully deterministic) with the given silent-fault spec and verify
// mode.
func runSDCStream(t *testing.T, pl *Pipeline, fasta []byte, batchResidues int64,
	spec string, seed int64, mode VerifyMode) (*Result, *gpu.ScheduleReport) {
	t.Helper()
	sys := simt.NewSystem(simt.GTX580(), 1)
	if spec != "" {
		faults, err := simt.ParseFaults(spec, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ApplyFaults(faults); err != nil {
			t.Fatal(err)
		}
	}
	res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues, MaxRetries: 8, Verify: mode})
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Extra.(*MultiGPUStreamExtra).Schedule
}

// hitsIdentical reports bit-identity of two results' hit lists
// without failing the test (the corruption assertions need the
// negative).
func hitsIdentical(a, b *Result) bool {
	if len(a.Hits) != len(b.Hits) {
		return false
	}
	for i := range a.Hits {
		x, y := a.Hits[i], b.Hits[i]
		if x.Index != y.Index || x.Name != y.Name ||
			x.MSVBits != y.MSVBits || x.VitBits != y.VitBits || x.FwdBits != y.FwdBits {
			return false
		}
	}
	return true
}

// The end-to-end SDC story: the same readback-flip injection that
// provably corrupts an unverified run is caught by the guards and
// repaired by host re-execution, restoring bit-identical results.
func TestStreamSDCDetectedAndRepairedByDMR(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	const spec = "0:flip@p=0.05"
	const seed = 11

	off, offRep := runSDCStream(t, pl, fasta, batchResidues, spec, seed, VerifyOff)
	if hitsIdentical(whole, off) {
		t.Fatal("unverified run with injected flips matched the clean run; injection proves nothing")
	}
	if offRep.Faults.SDCDetected != 0 || offRep.Faults.SDCReruns != 0 {
		t.Errorf("verify=off counted SDC activity: %d detected, %d reruns",
			offRep.Faults.SDCDetected, offRep.Faults.SDCReruns)
	}

	reg := obs.NewRegistry()
	pl.Opts.Metrics = reg
	defer func() { pl.Opts.Metrics = nil }()
	dmr, dmrRep := runSDCStream(t, pl, fasta, batchResidues, spec, seed, VerifyDMR)
	sameHits(t, "verify=dmr under injected flips", whole, dmr)
	if dmrRep.Faults.SDCDetected < 1 {
		t.Error("verify=dmr detected no corruption despite injected flips")
	}
	if dmrRep.Faults.SDCReruns < 1 {
		t.Error("verify=dmr recorded no re-executions")
	}
	for _, name := range []string{"hmmer_sched_sdc_detected_total", "hmmer_sched_sdc_reruns_total"} {
		if v, ok := reg.Get(name); !ok || v == 0 {
			t.Errorf("%s = %v (present %v), want > 0", name, v, ok)
		}
	}
	if v, ok := reg.Get(obs.WithLabel("hmmer_sched_device_sdc_total", "device", "0")); !ok || v == 0 {
		t.Errorf("device sdc gauge = %v (present %v), want > 0", v, ok)
	}

	// Seeded determinism: the whole detect-and-repair trajectory must
	// replay exactly.
	dmr2, dmrRep2 := runSDCStream(t, pl, fasta, batchResidues, spec, seed, VerifyDMR)
	sameHits(t, "verify=dmr replay", dmr, dmr2)
	if dmrRep2.Faults.SDCDetected != dmrRep.Faults.SDCDetected ||
		dmrRep2.Faults.SDCReruns != dmrRep.Faults.SDCReruns {
		t.Errorf("replayed SDC totals %d/%d differ from %d/%d",
			dmrRep2.Faults.SDCDetected, dmrRep2.Faults.SDCReruns,
			dmrRep.Faults.SDCDetected, dmrRep.Faults.SDCReruns)
	}
}

// Guards-only mode repairs a one-shot corruption burst by discarding
// the batch and re-running it on the device's retry budget — no DMR
// callback involved. flip@launch=0 fires once (with a guaranteed
// grid-detectable readback flip), so the requeued attempt is clean
// even on the same device.
func TestStreamSDCGuardsRequeueRepairs(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	res, rep := runSDCStream(t, pl, fasta, batchResidues, "0:flip@launch=0", 1, VerifyGuards)
	sameHits(t, "verify=guards under a one-shot flip burst", whole, res)
	if rep.Faults.SDCDetected != 1 {
		t.Errorf("SDCDetected = %d, want 1 (the forced launch-0 burst)", rep.Faults.SDCDetected)
	}
	if rep.Faults.SDCReruns != 1 {
		t.Errorf("SDCReruns = %d, want 1 (the budgeted requeue)", rep.Faults.SDCReruns)
	}
	if rep.Faults.Devices[0].SDCs != 1 {
		t.Errorf("device SDCs = %d, want 1", rep.Faults.Devices[0].SDCs)
	}
}

// An ECC device never corrupts: the same flip spec on a Tesla K40
// must produce a clean, identical run with zero detections even under
// the strictest verify mode.
func TestStreamSDCECCDeviceImmune(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	sys := simt.NewSystem(simt.TeslaK40(), 1)
	faults, err := simt.ParseFaults("0:flip@p=0.05,flip@launch=0", 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ApplyFaults(faults); err != nil {
		t.Fatal(err)
	}
	res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues, Verify: VerifyDMR})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "ECC device under flip injection", whole, res)
	rep := res.Extra.(*MultiGPUStreamExtra).Schedule
	if rep.Faults.SDCDetected != 0 || rep.Faults.SDCReruns != 0 {
		t.Errorf("ECC run saw SDC activity: %d detected, %d reruns",
			rep.Faults.SDCDetected, rep.Faults.SDCReruns)
	}
	if dev := sys.Devices[0]; dev.Faults.Mem.Corrected() == 0 {
		t.Error("ECC device reported no corrected flips; injection never exercised the ECC path")
	}
}

// Clean-path ordering invariant: with no faults injected, every hit of
// both engines must satisfy MSV <= Viterbi <= Forward within
// integrity.OrderingTolNats — the empirical envelope the hit guard
// depends on. A failure here means the tolerance no longer covers the
// engines' real behaviour and OrderingTolNats needs re-pinning.
func TestCleanPipelineOrderingInvariant(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	chk := &integrity.Checker{MSV: pl.MSV, Vit: pl.Vit}
	if len(whole.Hits) == 0 {
		t.Fatal("fixture produced no hits; invariant unexercised")
	}
	for _, h := range whole.Hits {
		if err := chk.CheckHit(h.Index, h.MSVBits, h.VitBits, h.FwdBits); err != nil {
			t.Errorf("CPU engine hit violates ordering envelope: %v", err)
		}
	}
	// The device path under VerifyGuards runs every guard on every
	// batch: a clean run completing without a single detection pins the
	// invariant for the GPU engines too.
	res, rep := runSDCStream(t, pl, fasta, batchResidues, "", 0, VerifyGuards)
	sameHits(t, "clean guarded device run", whole, res)
	if rep.Faults.SDCDetected != 0 {
		t.Errorf("clean device run tripped %d integrity detections", rep.Faults.SDCDetected)
	}
}
