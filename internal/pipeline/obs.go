package pipeline

// Observability wiring: every engine emits a span tree
// (search → stage → kernel, with per-batch spans on device tracks in
// the streamed engines) into Options.Trace and merges its counters
// into Options.Metrics. Both default to nil and cost ~nothing when
// unset; see internal/obs.

import (
	"fmt"
	"time"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// attachProfiler points every device of the run at Options.Profiler
// and tags subsequent launches with the query's model size and memory
// configuration; a nil Profiler leaves the devices untouched (the
// nil-cost-when-off path in simt).
func (pl *Pipeline) attachProfiler(mem gpu.MemConfig, devs ...*simt.Device) {
	prof := pl.Opts.Profiler
	if prof == nil {
		return
	}
	prof.SetLabel("m", fmt.Sprint(pl.Prof.M))
	prof.SetLabel("mem", mem.String())
	for _, d := range devs {
		d.Profiler = prof
	}
}

// startSearch opens the root span of one run on the host track.
func (pl *Pipeline) startSearch(engine string, db *seq.Database) *obs.Span {
	if db == nil {
		return pl.Opts.Trace.Start("host", "search",
			obs.String("engine", engine), obs.Int("model_m", int64(pl.Prof.M)))
	}
	return pl.Opts.Trace.Start("host", "search",
		obs.String("engine", engine),
		obs.Int("model_m", int64(pl.Prof.M)),
		obs.Int("seqs", int64(db.NumSeqs())),
		obs.Int("residues", db.TotalResidues()))
}

// startExec opens the span one cluster-worker batch executes under
// and returns it with the wall-clock start (for endExec's histogram).
func (pl *Pipeline) startExec(engine string, seqNo uint64, db *seq.Database) (*obs.Span, time.Time) {
	sp := pl.Opts.Trace.Start("host", "cluster-exec",
		obs.String("engine", engine),
		obs.Int("batch", int64(seqNo)),
		obs.Int("seqs", int64(db.NumSeqs())),
		obs.Int("residues", db.TotalResidues()))
	return sp, time.Now()
}

// endExec closes a worker batch span and publishes the worker-side
// counters: batches executed, failures, and a latency histogram — the
// per-node numbers a cluster operator scrapes to find a slow or sick
// worker.
func (pl *Pipeline) endExec(sp *obs.Span, t0 time.Time, engine string, err error) {
	if err != nil {
		sp.Annotate(obs.String("error", err.Error()))
	}
	sp.End()
	reg := pl.Opts.Metrics
	if !reg.Enabled() {
		return
	}
	reg.AddInt(obs.WithLabel("hmmer_worker_batches_total", "engine", engine), 1)
	if err != nil {
		reg.AddInt(obs.WithLabel("hmmer_worker_batch_errors_total", "engine", engine), 1)
	}
	reg.Observe("hmmer_worker_batch_seconds", time.Since(t0).Seconds(), obs.LatencyBuckets()...)
}

// startStage opens a stage span under parent and returns a closure
// that annotates the filtering outcome and ends it.
func startStage(parent *obs.Span, name string) (*obs.Span, func(st *StageStats)) {
	sp := parent.Child("stage:" + name)
	return sp, func(st *StageStats) {
		sp.Annotate(
			obs.Int("in", int64(st.In)),
			obs.Int("out", int64(st.Out)),
			obs.Int("cells", st.Cells))
		sp.End()
	}
}

// Record merges one stage's stats into reg under the pipeline
// subsystem. The pass-fraction gauge is only set once the stage has
// seen input, so the table never carries an undefined ratio.
func (s StageStats) Record(reg *obs.Registry, stage string) {
	if !reg.Enabled() {
		return
	}
	reg.AddInt(obs.WithLabel("hmmer_pipeline_stage_in_total", "stage", stage), int64(s.In))
	reg.AddInt(obs.WithLabel("hmmer_pipeline_stage_out_total", "stage", stage), int64(s.Out))
	reg.AddInt(obs.WithLabel("hmmer_pipeline_stage_cells_total", "stage", stage), s.Cells)
	reg.Add(obs.WithLabel("hmmer_pipeline_stage_wall_seconds_total", "stage", stage), s.Wall.Seconds())
	if s.In > 0 {
		reg.Set(obs.WithLabel("hmmer_pipeline_stage_pass_fraction", "stage", stage), s.PassFraction())
	}
}

// Summary renders "out/in (pct) in wall" for one stage; the pass
// percentage renders "-" when the stage saw no input, never NaN.
func (s StageStats) Summary() string {
	return fmt.Sprintf("%d/%d (%s) in %v",
		s.Out, s.In, obs.Pct(float64(s.Out), float64(s.In)), s.Wall)
}

// Record merges the run's complete statistics into reg: the three
// stage rows, plus whatever the engine left in Extra — kernel
// counters from every launch (simt subsystem), the streaming
// scheduler's utilization (sched subsystem), and per-device reports
// of the static multi-GPU split.
func (res *Result) Record(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	res.MSV.Record(reg, "msv")
	res.Viterbi.Record(reg, "viterbi")
	res.Forward.Record(reg, "forward")
	reg.AddInt("hmmer_pipeline_hits_total", int64(len(res.Hits)))

	switch x := res.Extra.(type) {
	case *GPUExtra:
		if x.MSVReport != nil {
			x.MSVReport.Launch.Record(reg, "msv")
		}
		if x.VitReport != nil {
			x.VitReport.Launch.Record(reg, "p7viterbi")
		}
		if x.FwdReport != nil {
			x.FwdReport.Launch.Record(reg, "forward")
		}
	case *MultiGPUExtra:
		recordMulti(reg, x.MSV, "msv")
		recordMulti(reg, x.Vit, "p7viterbi")
	case *MultiGPUStreamExtra:
		if x.Schedule != nil {
			x.Schedule.Record(reg)
		}
		if x.Checkpoint != nil {
			x.Checkpoint.Record(reg)
		}
		for _, launches := range x.Launches {
			for _, rep := range launches {
				if rep != nil {
					rep.Stats.Record(reg)
				}
			}
		}
	case *ClusterStreamExtra:
		if x.Cluster != nil {
			x.Cluster.Record(reg)
		}
		if x.Checkpoint != nil {
			x.Checkpoint.Record(reg)
		}
	}
}

func recordMulti(reg *obs.Registry, mr *gpu.MultiReport, kernel string) {
	if mr == nil {
		return
	}
	for _, rep := range mr.PerDevice {
		if rep != nil && rep.Launch != nil {
			rep.Launch.Record(reg, kernel)
		}
	}
}
