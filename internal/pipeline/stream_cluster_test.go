package pipeline

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/cluster"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// cpuWorkers builds n in-process CPU-engine workers for pl.
func cpuWorkers(pl *Pipeline, cfg StreamConfig, n int) []cluster.WorkerSpec {
	return pl.InProcessClusterWorkers(cfg, 0, n, 1, func() cluster.Exec { return pl.ClusterExecCPU() })
}

// clusterRun executes one cluster-mode streamed run over the fixture
// stream with n in-process CPU workers.
func clusterRun(t *testing.T, pl *Pipeline, fasta []byte, batchResidues int64, n int,
	mutate func(cfg *StreamConfig, ccfg *ClusterConfig)) (*Result, error) {
	t.Helper()
	cfg := StreamConfig{BatchResidues: batchResidues}
	ccfg := ClusterConfig{}
	if mutate != nil {
		mutate(&cfg, &ccfg)
	}
	if ccfg.Workers == nil {
		ccfg.Workers = cpuWorkers(pl, cfg, n)
	}
	return pl.RunClusterStream(bytes.NewReader(fasta), cfg, ccfg)
}

// TestClusterStreamMatchesSingleNode: a clean sharded run across three
// workers must be bit-identical to the whole-database single-node run.
func TestClusterStreamMatchesSingleNode(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	res, err := clusterRun(t, pl, fasta, batchResidues, 3, nil)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	sameHits(t, "clean cluster", whole, res)
	extra := res.Extra.(*ClusterStreamExtra)
	if extra.Cluster.Faulted() {
		t.Errorf("clean run reports faults: %s", extra.Cluster)
	}
	if got := extra.Cluster.Batches; got < 2 {
		t.Errorf("only %d batches sharded; fixture too small to exercise sharding", got)
	}
}

// TestClusterStreamMixedEnginesMatch: a cluster mixing device-backed
// and CPU workers must still merge one consistent, bit-identical
// result — the engines are bit-identical by design.
func TestClusterStreamMixedEnginesMatch(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	cfg := StreamConfig{BatchResidues: batchResidues}
	sys := simt.NewSystem(simt.GTX580(), 2)
	mode := byte(sys.Devices[0].Mode)
	gpuWorker := pl.NewWorkerServer(cfg, mode, "gpu-node", 2, pl.ClusterExecGPU(sys, gpu.MemAuto))
	ccfg := ClusterConfig{
		Mode: mode,
		Workers: append(
			pl.InProcessClusterWorkers(cfg, mode, 1, 1, func() cluster.Exec { return pl.ClusterExecCPU() }),
			clusterInProcess(gpuWorker)),
	}
	res, err := pl.RunClusterStream(bytes.NewReader(fasta), cfg, ccfg)
	if err != nil {
		t.Fatalf("mixed cluster run failed: %v", err)
	}
	sameHits(t, "mixed engines", whole, res)
}

// TestClusterStreamFaultedMatchesClean kills one worker mid-stream and
// tears another's frame; the reclaimed batches re-execute exactly once
// elsewhere and the result stays bit-identical.
func TestClusterStreamFaultedMatchesClean(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	reg := obs.NewRegistry()
	pl.Opts.Metrics = reg
	defer func() { pl.Opts.Metrics = nil }()

	inject, err := cluster.ParseFaults("0:kill=1,dead=1;1:torn=0,dead=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := clusterRun(t, pl, fasta, batchResidues, 3,
		func(cfg *StreamConfig, ccfg *ClusterConfig) { ccfg.Inject = inject })
	if err != nil {
		t.Fatalf("faulted cluster run failed: %v", err)
	}
	sameHits(t, "faulted cluster", whole, res)

	rep := res.Extra.(*ClusterStreamExtra).Cluster
	if rep.Requeues < 2 {
		t.Errorf("requeues = %d, want >= 2 (one per injected loss): %s", rep.Requeues, rep)
	}
	if rep.FencedCommits != 0 {
		t.Errorf("fenced commits = %d: a lost batch was double-executed", rep.FencedCommits)
	}
	if v, ok := reg.Get("hmmer_cluster_requeues_total"); !ok || v != float64(rep.Requeues) {
		t.Errorf("hmmer_cluster_requeues_total = %v (present %v), want %d", v, ok, rep.Requeues)
	}
}

// TestClusterStreamCrashResumeMatchesClean crashes the coordinator via
// journal injection after two committed batches and resumes with a
// fresh cluster: replay plus re-sharded remainder must match the
// single-node run bit for bit.
func TestClusterStreamCrashResumeMatchesClean(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	_, err := clusterRun(t, pl, fasta, batchResidues, 3,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			cfg.Checkpoint = &CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(2, checkpoint.WindowAfterSync)}
		})
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}

	res, err := clusterRun(t, pl, fasta, batchResidues, 3,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			cfg.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
		})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	sameHits(t, "cluster crash-resume", whole, res)
	extra := res.Extra.(*ClusterStreamExtra)
	if extra.Replayed < 2 {
		t.Errorf("replayed %d batches, want >= 2 (both were durable before the crash)", extra.Replayed)
	}
	if extra.Checkpoint == nil {
		t.Error("no checkpoint stats on a journaled run")
	}
}

// TestClusterStreamCrashResumeUnderFaults combines coordinator crash
// recovery with worker chaos on both sides of the crash.
func TestClusterStreamCrashResumeUnderFaults(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	chaos := func() *cluster.FaultInjector {
		inject, err := cluster.ParseFaults("0:kill=1,dead=1", 11)
		if err != nil {
			t.Fatal(err)
		}
		return inject
	}
	_, err := clusterRun(t, pl, fasta, batchResidues, 3,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			ccfg.Inject = chaos()
			cfg.Checkpoint = &CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(1, checkpoint.WindowAfterSync)}
		})
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}

	res, err := clusterRun(t, pl, fasta, batchResidues, 3,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			ccfg.Inject = chaos()
			cfg.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
		})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	sameHits(t, "faulted cluster crash-resume", whole, res)
}

// TestClusterStreamDegradesToLocal: with every worker unreachable the
// coordinator finishes the whole stream on its own CPU, bit-identical.
func TestClusterStreamDegradesToLocal(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	inject, err := cluster.ParseFaults("0:refuse=999;1:refuse=999", 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := clusterRun(t, pl, fasta, batchResidues, 2,
		func(cfg *StreamConfig, ccfg *ClusterConfig) { ccfg.Inject = inject })
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	sameHits(t, "degraded cluster", whole, res)
	rep := res.Extra.(*ClusterStreamExtra).Cluster
	if !rep.Degraded {
		t.Fatal("run not marked degraded")
	}
	if rep.LocalBatches != rep.Batches {
		t.Errorf("local batches %d != submitted %d: remote workers were supposed to be unreachable", rep.LocalBatches, rep.Batches)
	}
}

// TestClusterStreamAllWorkersLostFails: same loss without a local
// executor must surface cluster.ErrAllWorkersLost, not hang or
// silently truncate.
func TestClusterStreamAllWorkersLostFails(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	inject, err := cluster.ParseFaults("0:refuse=999;1:refuse=999", 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = clusterRun(t, pl, fasta, batchResidues, 2,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			ccfg.Inject = inject
			cfg.DisableFallback = true
		})
	if !errors.Is(err, cluster.ErrAllWorkersLost) {
		t.Fatalf("err = %v, want ErrAllWorkersLost", err)
	}
}

// TestClusterStreamDrainThenResume drains a journaled cluster run
// before it starts, then resumes it to completion.
func TestClusterStreamDrainThenResume(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	drain := make(chan struct{})
	close(drain)
	res, err := clusterRun(t, pl, fasta, batchResidues, 2,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			cfg.Drain = drain
			cfg.Checkpoint = &CheckpointConfig{Path: path}
		})
	if err != nil {
		t.Fatalf("drained run surfaced an error: %v", err)
	}
	if !res.Extra.(*ClusterStreamExtra).Drained {
		t.Fatal("run not marked drained")
	}

	res, err = clusterRun(t, pl, fasta, batchResidues, 2,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			cfg.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
		})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	sameHits(t, "cluster drain-then-resume", whole, res)
}

// TestClusterStreamResumeRefusesModeMismatch: a journal written under
// one simulator mode must refuse to resume under another with a typed
// error, before any worker computes anything.
func TestClusterStreamResumeRefusesModeMismatch(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	_, err := clusterRun(t, pl, fasta, batchResidues, 2,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			ccfg.Mode = 0
			cfg.Checkpoint = &CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(1, checkpoint.WindowAfterSync)}
		})
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}

	_, err = clusterRun(t, pl, fasta, batchResidues, 2,
		func(cfg *StreamConfig, ccfg *ClusterConfig) {
			ccfg.Mode = 1
			cfg.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
		})
	var mm *checkpoint.ModeMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("cross-mode resume returned %v, want ModeMismatchError", err)
	}
}

// TestClusterStreamRejectsUnsupportedOptions: alignment output cannot
// cross the wire and -verify belongs to device execution; both must
// refuse upfront.
func TestClusterStreamRejectsUnsupportedOptions(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)

	pl.Opts.ComputeAlignments = true
	_, err := clusterRun(t, pl, fasta, batchResidues, 2, nil)
	pl.Opts.ComputeAlignments = false
	if err == nil {
		t.Error("cluster run with ComputeAlignments accepted")
	}

	_, err = clusterRun(t, pl, fasta, batchResidues, 2,
		func(cfg *StreamConfig, ccfg *ClusterConfig) { cfg.Verify = VerifyGuards })
	if err == nil {
		t.Error("cluster run with Verify accepted")
	}
}

// TestClusterStreamHandshakeMismatchDegrades: a worker whose pipeline
// was built with different thresholds computes a different fingerprint;
// the coordinator must reject it at connect and finish the run without
// it rather than merge inconsistent results.
func TestClusterStreamHandshakeMismatchDegrades(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	cfg := StreamConfig{BatchResidues: batchResidues}

	// A worker fingerprinted under a different batch budget: same
	// model, incompatible chunking.
	wrong := pl.NewWorkerServer(StreamConfig{BatchResidues: batchResidues * 2}, 0, "skewed", 1, pl.ClusterExecCPU())
	ccfg := ClusterConfig{Workers: append(cpuWorkers(pl, cfg, 1), clusterInProcess(wrong))}
	res, err := pl.RunClusterStream(bytes.NewReader(fasta), cfg, ccfg)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	sameHits(t, "skewed worker rejected", whole, res)
	rep := res.Extra.(*ClusterStreamExtra).Cluster
	skewed := rep.Workers[1]
	if !skewed.Quarantined || skewed.Batches != 0 {
		t.Errorf("skewed worker: quarantined=%v batches=%d, want quarantined with 0 batches", skewed.Quarantined, skewed.Batches)
	}
}
