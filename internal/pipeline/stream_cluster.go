package pipeline

// Cluster-mode streaming: the two-level tier above the single-node
// schedulers. A coordinator (this process) chunks the FASTA stream
// into the same residue-balanced batches as RunMultiGPUStream and
// shards them across worker processes over the cluster wire protocol
// (see internal/cluster and DESIGN §2h). Workers execute batches with
// the same deterministic engines, so the sharded hit table is
// byte-identical to the single-node run's — clean, faulted, or
// crash-resumed.

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/cluster"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

// ClusterConfig configures the cluster tier of a streamed search. The
// batching, retry, drain, and checkpoint knobs come from the
// StreamConfig passed alongside it, so a cluster run journals and
// resumes exactly like a single-node streamed run — the coordinator
// reuses the checkpoint journal as its commit log.
type ClusterConfig struct {
	// Workers is the roster (required). Build specs with
	// cluster.InProcess for same-process workers or a TCP dialer for
	// worker processes; both run the same wire code.
	Workers []cluster.WorkerSpec
	// Mode is the simulator mode tag carried in the handshake and
	// stamped into the journal header; a worker running a different
	// cost model is rejected at connect, and a resume under a different
	// mode refuses with a checkpoint.ModeMismatchError.
	Mode byte

	// HeartbeatEvery / HeartbeatTimeout / BatchDeadline / MaxConnects /
	// BackoffBase / BackoffCap tune worker-loss detection and reconnect
	// pacing; zero values use the cluster defaults.
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	BatchDeadline    time.Duration
	MaxConnects      int
	BackoffBase      time.Duration
	BackoffCap       time.Duration

	// Epoch is the coordinator fencing epoch (cluster.Config.Epoch):
	// zero means 1, a plain primary run. A hot-standby takeover runs at
	// a higher epoch so workers fence the presumed-dead primary.
	Epoch uint64

	// Inject, when non-nil, applies deterministic fault plans to dials
	// and connections (chaos testing; see cluster.ParseFaults).
	Inject *cluster.FaultInjector
	// Clock substitutes a fake time source (tests); nil = wall clock.
	Clock gpu.Clock
	// Logf, when set, receives one line per cluster lifecycle event.
	Logf func(format string, args ...any)
}

// ClusterStreamExtra carries a cluster run's observability.
type ClusterStreamExtra struct {
	// Cluster is the coordinator's report: per-worker shares, requeues,
	// fence counters, quarantines, degradation.
	Cluster *cluster.Report
	// Drained reports a graceful early stop (StreamConfig.Drain).
	Drained bool
	// Replayed is the number of batches merged from the checkpoint
	// journal instead of being dispatched (0 for a fresh run).
	Replayed int
	// Checkpoint carries the journal's counters when journaling was
	// enabled.
	Checkpoint *checkpoint.Stats
}

// NewWorkerServer returns a WorkerServer bound to this pipeline's
// configuration: its handshake fingerprint is the same digest the
// coordinator computes from an identically configured pipeline, so
// only matching (model, thresholds, calibration, batch budget)
// pairs ever exchange batches. exec computes one batch and returns
// its EncodeResultPayload bytes.
func (pl *Pipeline) NewWorkerServer(cfg StreamConfig, mode byte, name string, capacity int, exec cluster.Exec) *cluster.WorkerServer {
	return &cluster.WorkerServer{
		Name:        name,
		Capacity:    capacity,
		Fingerprint: pl.fingerprint(cfg),
		Mode:        mode,
		Exec:        exec,
	}
}

// ClusterExecCPU returns a worker Exec running each batch through the
// host CPU engine. The CPU and device engines are bit-identical, so a
// cluster mixing CPU and device workers still merges one consistent
// result.
func (pl *Pipeline) ClusterExecCPU() cluster.Exec {
	return func(ctx context.Context, seqNo uint64, db *seq.Database) ([]byte, error) {
		sp, t0 := pl.startExec("cpu", seqNo, db)
		res, err := pl.runCPUContext(ctx, db, sp)
		pl.endExec(sp, t0, "cpu", err)
		if err != nil {
			return nil, err
		}
		return EncodeResultPayload(res), nil
	}
}

// ClusterExecGPU returns a worker Exec that runs each batch on one of
// the node's devices: filter stages on the device, Forward on the
// host, exactly like the single-node streamed engine. Concurrent
// batches (up to the server's capacity) each claim a device from the
// pool.
func (pl *Pipeline) ClusterExecGPU(sys *simt.System, mem gpu.MemConfig) cluster.Exec {
	pl.attachProfiler(mem, sys.Devices...)
	pool := make(chan *gpu.DeviceWorker, len(sys.Devices))
	for _, dev := range sys.Devices {
		pool <- gpu.NewDeviceWorker(dev, mem, pl.Opts.Workers, pl.MSV, pl.Vit)
	}
	return func(ctx context.Context, seqNo uint64, db *seq.Database) ([]byte, error) {
		w := <-pool
		defer func() { pool <- w }()
		sp, t0 := pl.startExec("gpu", seqNo, db)
		res, _, err := pl.searchBatchOnDevice(ctx, w, db, nil, sp)
		pl.endExec(sp, t0, "gpu", err)
		if err != nil {
			return nil, err
		}
		return EncodeResultPayload(res), nil
	}
}

// RunClusterStream is RunClusterStreamContext without cancellation.
func (pl *Pipeline) RunClusterStream(r io.Reader, cfg StreamConfig, ccfg ClusterConfig) (*Result, error) {
	return pl.RunClusterStreamContext(context.Background(), r, cfg, ccfg)
}

// RunClusterStreamContext searches a FASTA stream across cluster
// workers: the stream is chunked into residue-balanced batches
// (identical to RunMultiGPUStream's chunking — enforced by the config
// fingerprint) and each batch runs on whichever worker slot frees up
// first. Worker loss is detected by heartbeat and repaired by
// exactly-once requeue; once every worker is lost the remaining
// batches complete on the coordinator's own CPU (graceful
// degradation, disabled by cfg.DisableFallback). With cfg.Checkpoint
// set, every committed batch lands in the crash-safe journal before
// its merge is acknowledged, and a -resume run replays the journal
// and re-shards only the remainder.
//
// The merged Result is bit-identical to the single-node run's for
// every outcome the run can survive: clean, worker-faulted, degraded,
// drained-then-resumed, or crashed-then-resumed.
func (pl *Pipeline) RunClusterStreamContext(ctx context.Context, r io.Reader, cfg StreamConfig, ccfg ClusterConfig) (*Result, error) {
	if err := pl.vetClusterRun(cfg, ccfg); err != nil {
		return nil, err
	}

	// The journal opens (and replays) before any worker connects: a
	// fingerprint, mode, or corruption error must abort the run before
	// it spends hours recomputing — and before any worker accepts a
	// batch under a stale config.
	journal, skip, err := pl.openStreamJournal(cfg, ccfg.Mode)
	if err != nil {
		return nil, err
	}
	return pl.runClusterCore(ctx, r, cfg, ccfg, journal, skip, haState{})
}

// vetClusterRun is the shared precondition check for the primary and
// standby cluster paths.
func (pl *Pipeline) vetClusterRun(cfg StreamConfig, ccfg ClusterConfig) error {
	if cfg.BatchResidues < 1 {
		return fmt.Errorf("pipeline: stream batch residues %d < 1", cfg.BatchResidues)
	}
	if len(ccfg.Workers) == 0 {
		return fmt.Errorf("pipeline: no cluster workers configured")
	}
	if cfg.Verify != VerifyOff {
		return fmt.Errorf("pipeline: -verify applies to device execution; cluster workers verify on their own nodes")
	}
	if pl.Opts.ComputeAlignments {
		return fmt.Errorf("pipeline: cluster mode does not support alignment output: domain alignments are not encoded in result payloads")
	}
	return nil
}

// haState carries what a hot-standby takeover knows that a plain run
// does not; the zero value is a plain run.
type haState struct {
	// failovers and standbyTailed flow into the coordinator report.
	failovers     int
	standbyTailed int
}

// runClusterCore is the shared body of the primary and standby cluster
// paths: journal-gated commit, re-chunking producer, coordinator run,
// merge. It owns journal (closes it on every path).
func (pl *Pipeline) runClusterCore(ctx context.Context, r io.Reader, cfg StreamConfig, ccfg ClusterConfig, journal *checkpoint.Journal, skip map[uint64]checkpoint.Record, ha haState) (*Result, error) {
	if journal != nil {
		defer journal.Close()
	}

	root := pl.startSearch("cluster-stream", nil)
	defer root.End()

	final := &Result{}
	var mu sync.Mutex

	// commit is the single merge path for every executor (remote
	// worker, degraded local path): the payload is validated before it
	// is journaled (a corrupt worker payload must never become a
	// durable record), the journal append happens strictly before the
	// merge (write-ahead ordering), and the whole path is gated by the
	// batch's one-shot commit token via the coordinator.
	commit := func(b cluster.Batch, payload []byte) (bool, error) {
		if !b.Commit() {
			return false, nil
		}
		res, err := DecodeResultPayload(payload)
		if err != nil {
			return false, fmt.Errorf("pipeline: result payload for batch %d: %v", b.Seq, err)
		}
		if journal != nil {
			if err := journal.Append(checkpoint.Record{
				Seq:      uint64(b.Seq),
				Offset:   uint64(b.Offset),
				NumSeqs:  uint64(b.DB.NumSeqs()),
				Residues: uint64(b.DB.TotalResidues()),
				Payload:  payload,
			}); err != nil {
				return false, err
			}
		}
		mu.Lock()
		mergeBatch(final, res, b.Offset)
		mu.Unlock()
		return true, nil
	}

	coord := &cluster.Coordinator{Cfg: cluster.Config{
		Workers:          ccfg.Workers,
		Fingerprint:      pl.fingerprint(cfg),
		Mode:             ccfg.Mode,
		Epoch:            ccfg.Epoch,
		QueueDepth:       cfg.QueueDepth,
		HeartbeatEvery:   ccfg.HeartbeatEvery,
		HeartbeatTimeout: ccfg.HeartbeatTimeout,
		BatchDeadline:    ccfg.BatchDeadline,
		MaxConnects:      ccfg.MaxConnects,
		QuarantineAfter:  cfg.QuarantineAfter,
		MaxRetries:       cfg.MaxRetries,
		BackoffBase:      ccfg.BackoffBase,
		BackoffCap:       ccfg.BackoffCap,
		Drain:            cfg.Drain,
		Clock:            ccfg.Clock,
		Inject:           ccfg.Inject,
		Trace:            root,
		Logf:             ccfg.Logf,
	}}
	if !cfg.DisableFallback {
		// Degraded local execution: the coordinator's own CPU engine
		// computes the same payload a worker would have shipped, and
		// commits through the same journal-then-merge path.
		coord.Cfg.Local = func(b cluster.Batch) (bool, error) {
			res, err := pl.runCPUContext(ctx, b.DB, nil)
			if err != nil {
				return false, err
			}
			return commit(b, EncodeResultPayload(res))
		}
	}

	var replayedBatches, replayedSeqs int
	rep, err := coord.Run(ctx,
		func(submit func(b cluster.Batch) error) error {
			// The producer re-chunks the stream exactly as the original
			// run did (same parser, same residue budget — enforced by
			// the fingerprint), so batch ordinals and offsets line up
			// with the journal's. Journaled batches merge from disk and
			// are never dispatched; everything else ships to a worker.
			seqNo, offset := uint64(0), 0
			return seq.StreamFASTAResidues(r, pl.Prof.Abc, cfg.BatchResidues, func(db *seq.Database) error {
				if rec, ok := skip[seqNo]; ok {
					if rec.Offset != uint64(offset) || rec.NumSeqs != uint64(db.NumSeqs()) || rec.Residues != uint64(db.TotalResidues()) {
						return fmt.Errorf("pipeline: journal record for batch %d does not match the input stream (journal: offset %d, %d seqs, %d residues; stream: offset %d, %d seqs, %d residues): was the database file changed?",
							seqNo, rec.Offset, rec.NumSeqs, rec.Residues, offset, db.NumSeqs(), db.TotalResidues())
					}
					res, err := decodeBatchPayload(rec.Payload)
					if err != nil {
						return fmt.Errorf("pipeline: journal record for batch %d: %v", seqNo, err)
					}
					mu.Lock()
					mergeBatch(final, res, offset)
					mu.Unlock()
					delete(skip, seqNo)
					replayedBatches++
					replayedSeqs += db.NumSeqs()
					seqNo++
					offset += db.NumSeqs()
					return nil
				}
				if err := submit(cluster.Batch{Seq: int(seqNo), Offset: offset, DB: db}); err != nil {
					return err
				}
				seqNo++
				offset += db.NumSeqs()
				return nil
			})
		},
		commit)
	if err != nil {
		return nil, err
	}
	if len(skip) > 0 && !rep.Drained {
		return nil, fmt.Errorf("pipeline: journal holds %d batches beyond the end of the input stream: was the database file changed?", len(skip))
	}
	rep.Failovers = ha.failovers
	rep.StandbyTailed = ha.standbyTailed

	extra := &ClusterStreamExtra{Cluster: rep, Drained: rep.Drained, Replayed: replayedBatches}
	if journal != nil {
		// Surface close/sync errors: an unsynced tail the caller was
		// told is durable would break the resume contract.
		if err := journal.Close(); err != nil {
			return nil, err
		}
		st := journal.Stats()
		extra.Checkpoint = &st
	}
	finalizeStream(final, rep.Seqs+replayedSeqs)
	final.Extra = extra
	final.Record(pl.Opts.Metrics)
	return final, nil
}

// clusterInProcess returns a WorkerSpec served by ws inside this
// process: each dial is one end of a net.Pipe whose other end ws
// serves, so in-process workers exercise the identical wire code as
// TCP workers.
func clusterInProcess(ws *cluster.WorkerServer) cluster.WorkerSpec {
	return cluster.WorkerSpec{
		Name: ws.Name,
		Dial: func(ctx context.Context) (net.Conn, error) {
			c1, c2 := net.Pipe()
			go ws.ServeConn(context.Background(), c2)
			return c1, nil
		},
	}
}

// InProcessWorkerSpec exposes the net.Pipe transport for callers that
// must dial the same WorkerServer across coordinator runs: the epoch
// fence lives in the server, so a hot-standby exercising takeover
// in-process has to promote against the instances the primary used,
// not fresh ones.
func InProcessWorkerSpec(ws *cluster.WorkerServer) cluster.WorkerSpec {
	return clusterInProcess(ws)
}

// InProcessClusterWorkers builds n in-process worker nodes named
// "local-0".."local-(n-1)", each serving exec with the given capacity
// over net.Pipe. This is the -cluster n path of cmd/hmmsearch: a
// single-process cluster that still exercises the full wire protocol,
// handshake, and fault machinery.
func (pl *Pipeline) InProcessClusterWorkers(cfg StreamConfig, mode byte, n, capacity int, exec func() cluster.Exec) []cluster.WorkerSpec {
	specs := make([]cluster.WorkerSpec, n)
	for i := range specs {
		ws := pl.NewWorkerServer(cfg, mode, fmt.Sprintf("local-%d", i), capacity, exec())
		specs[i] = clusterInProcess(ws)
	}
	return specs
}
