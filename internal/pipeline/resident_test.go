package pipeline

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/simt"
)

// A resident database must cut exactly the batches the streaming
// parser would, and hash the raw bytes.
func TestLoadResidentDBMatchesStreamChunking(t *testing.T) {
	_, fasta, _, batchResidues := faultStreamFixture(t)
	rdb, err := LoadResidentDB("test", bytes.NewReader(fasta), abc, batchResidues)
	if err != nil {
		t.Fatal(err)
	}
	if rdb.Hash != sha256.Sum256(fasta) {
		t.Error("resident hash is not the SHA-256 of the raw FASTA bytes")
	}
	if len(rdb.Batches) < 2 {
		t.Fatalf("expected multiple batches, got %d", len(rdb.Batches))
	}
	seqs, res := 0, int64(0)
	for _, b := range rdb.Batches {
		seqs += b.NumSeqs()
		res += b.TotalResidues()
	}
	if seqs != rdb.Seqs || res != rdb.Residues {
		t.Errorf("totals mismatch: %d/%d seqs, %d/%d residues", seqs, rdb.Seqs, res, rdb.Residues)
	}
}

// A resident-database search must be byte-identical to the one-shot
// streamed search over the same FASTA bytes and budget — the serving
// path's core correctness invariant — clean and fully degraded to the
// host CPU.
func TestResidentStreamMatchesOneShot(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	rdb, err := LoadResidentDB("test", bytes.NewReader(fasta), abc, batchResidues)
	if err != nil {
		t.Fatal(err)
	}

	sys := simt.NewSystem(simt.GTX580(), 2).SetMode(simt.ModeFast)
	res, err := pl.RunResidentStreamContext(t.Context(), sys, gpu.MemAuto, rdb,
		StreamConfig{BatchResidues: batchResidues})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "resident 2-device stream", whole, res)

	var tblResident, tblWhole bytes.Buffer
	if err := WriteTblout(&tblResident, "chaos", res); err != nil {
		t.Fatal(err)
	}
	if err := WriteTblout(&tblWhole, "chaos", whole); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tblResident.Bytes(), tblWhole.Bytes()) {
		t.Error("resident tblout differs from whole-database tblout")
	}

	cpuRes, err := pl.RunResidentCPUContext(t.Context(), rdb)
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "resident CPU degraded", whole, cpuRes)
}

// Devices quarantining mid-run (one dead from the start) must degrade
// to the host fallback without changing a byte of the hit table.
func TestResidentStreamFaultedMatchesClean(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	rdb, err := LoadResidentDB("test", bytes.NewReader(fasta), abc, batchResidues)
	if err != nil {
		t.Fatal(err)
	}

	sys := simt.NewSystem(simt.GTX580(), 2).SetMode(simt.ModeFast)
	faults, err := simt.ParseFaults("0:dead;1:dead", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ApplyFaults(faults); err != nil {
		t.Fatal(err)
	}
	res, err := pl.RunResidentStreamContext(t.Context(), sys, gpu.MemAuto, rdb,
		StreamConfig{BatchResidues: batchResidues, MaxRetries: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "resident all-dead fallback", whole, res)
	rep := res.Extra.(*MultiGPUStreamExtra).Schedule
	if rep.Faults.Fallbacks == 0 {
		t.Error("no batches drained to the host fallback despite dead devices")
	}
}

// The resident path refuses a checkpoint config: journaling belongs to
// the one-shot CLI.
func TestResidentStreamRejectsCheckpoint(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	rdb, err := LoadResidentDB("test", bytes.NewReader(fasta), abc, batchResidues)
	if err != nil {
		t.Fatal(err)
	}
	sys := simt.NewSystem(simt.GTX580(), 1).SetMode(simt.ModeFast)
	_, err = pl.RunResidentStreamContext(t.Context(), sys, gpu.MemAuto, rdb,
		StreamConfig{BatchResidues: batchResidues,
			Checkpoint: &CheckpointConfig{Path: "unused"}})
	if err == nil {
		t.Fatal("checkpointed resident run did not error")
	}
}
