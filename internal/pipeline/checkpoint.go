package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/gpu"
)

// CheckpointConfig enables crash-safe journaling of a streamed
// multi-device run (see internal/checkpoint and DESIGN §2e). Every
// committed batch's result is appended to an fsync'd on-disk journal
// before its merge is acknowledged, so a host crash loses at most the
// un-synced tail; a resumed run replays the journal, skips the
// completed batches, and produces byte-identical output.
type CheckpointConfig struct {
	// Path is the journal file.
	Path string
	// Resume replays an existing journal at Path before running; when
	// no journal exists the run starts fresh (and journals). Resuming
	// requires the same model, calibration, and BatchResidues as the
	// original run — the journal's config fingerprint is checked.
	Resume bool
	// SyncEvery is the fsync cadence (checkpoint.Options.SyncEvery):
	// 0/1 syncs every batch; N>1 amortises, risking the last <N batches
	// on a crash (they re-execute on resume).
	SyncEvery int
	// Crash injects a crash at a chosen journal append, for testing
	// recovery (see checkpoint.CrashAfter).
	Crash *checkpoint.CrashPlan
}

// openStreamJournal opens (or resumes) the run's checkpoint journal
// per cfg.Checkpoint, returning the journal and the set of already-
// committed records keyed by batch ordinal. A nil cfg.Checkpoint
// returns (nil, empty, nil). mode is the simulator mode stamped into
// the header (and checked on resume), so a resumed run can never
// silently mix cost models. Shared by the multi-device and cluster
// streaming paths — the cluster coordinator reuses the same journal
// as its commit log.
func (pl *Pipeline) openStreamJournal(cfg StreamConfig, mode byte) (*checkpoint.Journal, map[uint64]checkpoint.Record, error) {
	skip := make(map[uint64]checkpoint.Record)
	ck := cfg.Checkpoint
	if ck == nil {
		return nil, skip, nil
	}
	if pl.Opts.ComputeAlignments {
		return nil, nil, fmt.Errorf("pipeline: checkpoint journaling does not support alignment output: domain alignments are not encoded in journal records")
	}
	fp := pl.fingerprint(cfg)
	opts := checkpoint.Options{SyncEvery: ck.SyncEvery, Crash: ck.Crash, Mode: mode}
	if ck.Resume && checkpoint.Exists(ck.Path) {
		journal, recs, err := checkpoint.Resume(ck.Path, fp, opts)
		if err != nil {
			return nil, nil, err
		}
		for _, rec := range recs {
			if _, dup := skip[rec.Seq]; dup {
				journal.Close()
				return nil, nil, fmt.Errorf("pipeline: journal holds two records for batch %d: refusing to resume", rec.Seq)
			}
			skip[rec.Seq] = rec
		}
		return journal, skip, nil
	}
	journal, err := checkpoint.Create(ck.Path, fp, opts)
	if err != nil {
		return nil, nil, err
	}
	return journal, skip, nil
}

// fingerprint digests everything that determines batch identity and
// batch results: the model (via its name, size, and calibrated score
// distributions — the calibration constants are a float-exact function
// of the full model), the stage thresholds, the scoring options, and
// the chunking budget. Two runs with equal fingerprints chunk the
// stream identically and compute identical per-batch results, which is
// what makes replaying a journal record equivalent to re-running its
// batch.
func (pl *Pipeline) fingerprint(cfg StreamConfig) checkpoint.Fingerprint {
	h := sha256.New()
	w := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	f := func(vs ...float64) {
		for _, v := range vs {
			w(math.Float64bits(v))
		}
	}
	b := func(v bool) {
		if v {
			w(1)
		} else {
			w(0)
		}
	}
	h.Write([]byte("hmmer3gpu-ckpt-v1\x00"))
	h.Write([]byte(pl.Prof.Name))
	h.Write([]byte{0})
	w(uint64(pl.Prof.M), uint64(pl.Prof.L))
	f(pl.Opts.Thresholds.MSV, pl.Opts.Thresholds.Viterbi, pl.Opts.Thresholds.Forward)
	b(pl.Opts.SkipForward)
	b(pl.Opts.UseNull2)
	f(pl.MSVGumbel.Mu, pl.MSVGumbel.Lambda)
	f(pl.VitGumbel.Mu, pl.VitGumbel.Lambda)
	f(pl.FwdExp.Tau, pl.FwdExp.Lambda)
	w(uint64(cfg.BatchResidues))
	var fp checkpoint.Fingerprint
	h.Sum(fp[:0])
	return fp
}

// Fingerprint exposes the run-configuration digest to the cluster
// tier: the coordinator stamps it into the worker handshake (a worker
// built from a different model, thresholds, or batch budget is
// rejected at connect) and cmd/hmmworker computes its own side from
// the same inputs.
func (pl *Pipeline) Fingerprint(cfg StreamConfig) checkpoint.Fingerprint {
	return pl.fingerprint(cfg)
}

// EncodeResultPayload serialises one batch result with the journal's
// bit-exact payload encoding. Cluster workers ship results to the
// coordinator in this encoding, so the coordinator journals the wire
// payload verbatim and a replayed record is indistinguishable from a
// freshly received one.
func EncodeResultPayload(res *Result) []byte {
	return encodeResultPayload(res)
}

// DecodeResultPayload reverses EncodeResultPayload, validating the
// payload's structure (a corrupt or version-skewed worker payload must
// not merge).
func DecodeResultPayload(p []byte) (*Result, error) {
	return decodeBatchPayload(p)
}

// encodeBatchRecord serialises one committed batch's result as a
// journal record. Hit indexes stay batch-local (the record's Offset
// rebases them on replay) and floats round-trip bit-exactly via their
// IEEE-754 encoding, so a replayed merge is indistinguishable from the
// original one. Stage wall times are preserved as measured — the work
// really was done, in the crashed run.
func encodeBatchRecord(b gpu.Batch, res *Result) checkpoint.Record {
	return checkpoint.Record{
		Seq:      uint64(b.Seq),
		Offset:   uint64(b.Offset),
		NumSeqs:  uint64(b.DB.NumSeqs()),
		Residues: uint64(b.DB.TotalResidues()),
		Payload:  encodeResultPayload(res),
	}
}

// encodeResultPayload is the record's batch-identity-free body: stage
// stats and batch-local hits.
func encodeResultPayload(res *Result) []byte {
	var p []byte
	u64 := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			p = append(p, buf[:]...)
		}
	}
	stage := func(s StageStats) {
		u64(uint64(s.In), uint64(s.Out), uint64(s.Cells), uint64(s.Wall))
	}
	stage(res.MSV)
	stage(res.Viterbi)
	stage(res.Forward)
	u64(uint64(len(res.Hits)))
	for _, h := range res.Hits {
		u64(uint64(h.Index), uint64(len(h.Name)))
		p = append(p, h.Name...)
		u64(math.Float64bits(h.MSVBits), math.Float64bits(h.VitBits),
			math.Float64bits(h.FwdBits), math.Float64bits(h.PValue),
			math.Float64bits(h.EValue))
	}
	return p
}

// decodeBatchPayload reverses encodeBatchRecord. The journal's CRC
// already rejects bit rot; the structural checks here catch encoding
// drift (a journal from a different code version).
func decodeBatchPayload(p []byte) (*Result, error) {
	pos := 0
	u64 := func() (uint64, error) {
		if pos+8 > len(p) {
			return 0, fmt.Errorf("payload truncated at byte %d", pos)
		}
		v := binary.LittleEndian.Uint64(p[pos:])
		pos += 8
		return v, nil
	}
	stage := func(s *StageStats) error {
		vals := make([]uint64, 4)
		for i := range vals {
			v, err := u64()
			if err != nil {
				return err
			}
			vals[i] = v
		}
		s.In, s.Out = int(vals[0]), int(vals[1])
		s.Cells = int64(vals[2])
		s.Wall = time.Duration(vals[3])
		return nil
	}
	res := &Result{}
	if err := stage(&res.MSV); err != nil {
		return nil, err
	}
	if err := stage(&res.Viterbi); err != nil {
		return nil, err
	}
	if err := stage(&res.Forward); err != nil {
		return nil, err
	}
	n, err := u64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p)) { // each hit takes well over 1 byte
		return nil, fmt.Errorf("implausible hit count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var h Hit
		idx, err := u64()
		if err != nil {
			return nil, err
		}
		h.Index = int(idx)
		nameLen, err := u64()
		if err != nil {
			return nil, err
		}
		if pos+int(nameLen) > len(p) || nameLen > uint64(len(p)) {
			return nil, fmt.Errorf("hit %d: name truncated at byte %d", i, pos)
		}
		h.Name = string(p[pos : pos+int(nameLen)])
		pos += int(nameLen)
		for _, dst := range []*float64{&h.MSVBits, &h.VitBits, &h.FwdBits, &h.PValue, &h.EValue} {
			bits, err := u64()
			if err != nil {
				return nil, err
			}
			*dst = math.Float64frombits(bits)
		}
		res.Hits = append(res.Hits, h)
	}
	if pos != len(p) {
		return nil, fmt.Errorf("%d trailing bytes after %d hits", len(p)-pos, n)
	}
	return res, nil
}
