package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/gpu"
)

// CheckpointConfig enables crash-safe journaling of a streamed
// multi-device run (see internal/checkpoint and DESIGN §2e). Every
// committed batch's result is appended to an fsync'd on-disk journal
// before its merge is acknowledged, so a host crash loses at most the
// un-synced tail; a resumed run replays the journal, skips the
// completed batches, and produces byte-identical output.
type CheckpointConfig struct {
	// Path is the journal file.
	Path string
	// Resume replays an existing journal at Path before running; when
	// no journal exists the run starts fresh (and journals). Resuming
	// requires the same model, calibration, and BatchResidues as the
	// original run — the journal's config fingerprint is checked.
	Resume bool
	// SyncEvery is the fsync cadence (checkpoint.Options.SyncEvery):
	// 0/1 syncs every batch; N>1 amortises, risking the last <N batches
	// on a crash (they re-execute on resume).
	SyncEvery int
	// Crash injects a crash at a chosen journal append, for testing
	// recovery (see checkpoint.CrashAfter).
	Crash *checkpoint.CrashPlan
}

// fingerprint digests everything that determines batch identity and
// batch results: the model (via its name, size, and calibrated score
// distributions — the calibration constants are a float-exact function
// of the full model), the stage thresholds, the scoring options, and
// the chunking budget. Two runs with equal fingerprints chunk the
// stream identically and compute identical per-batch results, which is
// what makes replaying a journal record equivalent to re-running its
// batch.
func (pl *Pipeline) fingerprint(cfg StreamConfig) checkpoint.Fingerprint {
	h := sha256.New()
	w := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	f := func(vs ...float64) {
		for _, v := range vs {
			w(math.Float64bits(v))
		}
	}
	b := func(v bool) {
		if v {
			w(1)
		} else {
			w(0)
		}
	}
	h.Write([]byte("hmmer3gpu-ckpt-v1\x00"))
	h.Write([]byte(pl.Prof.Name))
	h.Write([]byte{0})
	w(uint64(pl.Prof.M), uint64(pl.Prof.L))
	f(pl.Opts.Thresholds.MSV, pl.Opts.Thresholds.Viterbi, pl.Opts.Thresholds.Forward)
	b(pl.Opts.SkipForward)
	b(pl.Opts.UseNull2)
	f(pl.MSVGumbel.Mu, pl.MSVGumbel.Lambda)
	f(pl.VitGumbel.Mu, pl.VitGumbel.Lambda)
	f(pl.FwdExp.Tau, pl.FwdExp.Lambda)
	w(uint64(cfg.BatchResidues))
	var fp checkpoint.Fingerprint
	h.Sum(fp[:0])
	return fp
}

// encodeBatchRecord serialises one committed batch's result as a
// journal record. Hit indexes stay batch-local (the record's Offset
// rebases them on replay) and floats round-trip bit-exactly via their
// IEEE-754 encoding, so a replayed merge is indistinguishable from the
// original one. Stage wall times are preserved as measured — the work
// really was done, in the crashed run.
func encodeBatchRecord(b gpu.Batch, res *Result) checkpoint.Record {
	var p []byte
	u64 := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			p = append(p, buf[:]...)
		}
	}
	stage := func(s StageStats) {
		u64(uint64(s.In), uint64(s.Out), uint64(s.Cells), uint64(s.Wall))
	}
	stage(res.MSV)
	stage(res.Viterbi)
	stage(res.Forward)
	u64(uint64(len(res.Hits)))
	for _, h := range res.Hits {
		u64(uint64(h.Index), uint64(len(h.Name)))
		p = append(p, h.Name...)
		u64(math.Float64bits(h.MSVBits), math.Float64bits(h.VitBits),
			math.Float64bits(h.FwdBits), math.Float64bits(h.PValue),
			math.Float64bits(h.EValue))
	}
	return checkpoint.Record{
		Seq:      uint64(b.Seq),
		Offset:   uint64(b.Offset),
		NumSeqs:  uint64(b.DB.NumSeqs()),
		Residues: uint64(b.DB.TotalResidues()),
		Payload:  p,
	}
}

// decodeBatchPayload reverses encodeBatchRecord. The journal's CRC
// already rejects bit rot; the structural checks here catch encoding
// drift (a journal from a different code version).
func decodeBatchPayload(p []byte) (*Result, error) {
	pos := 0
	u64 := func() (uint64, error) {
		if pos+8 > len(p) {
			return 0, fmt.Errorf("payload truncated at byte %d", pos)
		}
		v := binary.LittleEndian.Uint64(p[pos:])
		pos += 8
		return v, nil
	}
	stage := func(s *StageStats) error {
		vals := make([]uint64, 4)
		for i := range vals {
			v, err := u64()
			if err != nil {
				return err
			}
			vals[i] = v
		}
		s.In, s.Out = int(vals[0]), int(vals[1])
		s.Cells = int64(vals[2])
		s.Wall = time.Duration(vals[3])
		return nil
	}
	res := &Result{}
	if err := stage(&res.MSV); err != nil {
		return nil, err
	}
	if err := stage(&res.Viterbi); err != nil {
		return nil, err
	}
	if err := stage(&res.Forward); err != nil {
		return nil, err
	}
	n, err := u64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p)) { // each hit takes well over 1 byte
		return nil, fmt.Errorf("implausible hit count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var h Hit
		idx, err := u64()
		if err != nil {
			return nil, err
		}
		h.Index = int(idx)
		nameLen, err := u64()
		if err != nil {
			return nil, err
		}
		if pos+int(nameLen) > len(p) || nameLen > uint64(len(p)) {
			return nil, fmt.Errorf("hit %d: name truncated at byte %d", i, pos)
		}
		h.Name = string(p[pos : pos+int(nameLen)])
		pos += int(nameLen)
		for _, dst := range []*float64{&h.MSVBits, &h.VitBits, &h.FwdBits, &h.PValue, &h.EValue} {
			bits, err := u64()
			if err != nil {
				return nil, err
			}
			*dst = math.Float64frombits(bits)
		}
		res.Hits = append(res.Hits, h)
	}
	if pos != len(p) {
		return nil, fmt.Errorf("%d trailing bytes after %d hits", len(p)-pos, n)
	}
	return res, nil
}
