package pipeline

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hmmer3gpu/internal/checkpoint"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

// ckptRun executes one streamed multi-device run with journaling.
func ckptRun(t *testing.T, pl *Pipeline, fasta []byte, batchResidues int64, devices int,
	ck *CheckpointConfig, mutate func(cfg *StreamConfig)) (*Result, error) {
	t.Helper()
	sys := simt.NewSystem(simt.GTX580(), devices)
	cfg := StreamConfig{BatchResidues: batchResidues, Checkpoint: ck}
	if mutate != nil {
		mutate(&cfg)
	}
	return pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta), cfg)
}

// TestStreamCrashResumeMatchesClean exercises every crash window: the
// run is killed by injection after two appends, resumed, and the final
// result must be bit-identical to the uninterrupted run — regardless of
// whether the crash tore a half-written record (after-append), lost the
// record entirely (before-append), or left it durable with the merge
// unacknowledged (after-sync).
func TestStreamCrashResumeMatchesClean(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)

	for _, tc := range []struct {
		window      checkpoint.Window
		wantDropped int
	}{
		{checkpoint.WindowBeforeAppend, 0},
		{checkpoint.WindowAfterAppend, 1},
		{checkpoint.WindowAfterSync, 0},
	} {
		t.Run(tc.window.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")

			_, err := ckptRun(t, pl, fasta, batchResidues, 2,
				&CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(2, tc.window)}, nil)
			if !errors.Is(err, checkpoint.ErrInjectedCrash) {
				t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
			}

			res, err := ckptRun(t, pl, fasta, batchResidues, 2,
				&CheckpointConfig{Path: path, Resume: true}, nil)
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			sameHits(t, "resumed after "+tc.window.String(), whole, res)

			extra := res.Extra.(*MultiGPUStreamExtra)
			if extra.Replayed == 0 && tc.window == checkpoint.WindowAfterSync {
				t.Error("after-sync crash left nothing to replay")
			}
			if st := extra.Checkpoint; st == nil {
				t.Fatal("no checkpoint stats on a journaled run")
			} else if st.DroppedTail != tc.wantDropped {
				t.Errorf("dropped tail %d, want %d", st.DroppedTail, tc.wantDropped)
			}
		})
	}
}

// TestStreamCrashResumeUnderFaults combines the journal with device
// fault injection: a crashed chaotic run resumed under the same chaos
// must still match the clean whole-database result bit for bit.
func TestStreamCrashResumeUnderFaults(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	withFaults := func(cfg *StreamConfig) { cfg.MaxRetries = 8 }
	faultedSys := func() *simt.System {
		sys := simt.NewSystem(simt.GTX580(), 3)
		faults, err := simt.ParseFaults("0:at=0,at=2;1:at=1", 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ApplyFaults(faults); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	cfg := StreamConfig{BatchResidues: batchResidues,
		Checkpoint: &CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(1, checkpoint.WindowAfterSync)}}
	withFaults(&cfg)
	_, err := pl.RunMultiGPUStream(faultedSys(), gpu.MemAuto, bytes.NewReader(fasta), cfg)
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}

	cfg = StreamConfig{BatchResidues: batchResidues,
		Checkpoint: &CheckpointConfig{Path: path, Resume: true}}
	withFaults(&cfg)
	res, err := pl.RunMultiGPUStream(faultedSys(), gpu.MemAuto, bytes.NewReader(fasta), cfg)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	sameHits(t, "faulted crash-resume", whole, res)
}

// TestStreamCrashResumeUnderDMR crashes a run whose device flips bits
// (silent data corruption, repaired by dual modular redundancy) and
// resumes it: the journal must never hold a corrupt batch, so the
// resumed run matches the clean one.
func TestStreamCrashResumeUnderDMR(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	flippedSys := func() *simt.System {
		sys := simt.NewSystem(simt.GTX580(), 1)
		faults, err := simt.ParseFaults("0:flip@launch=0,flip@launch=3", 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ApplyFaults(faults); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	_, err := pl.RunMultiGPUStream(flippedSys(), gpu.MemAuto, bytes.NewReader(fasta), StreamConfig{
		BatchResidues: batchResidues,
		Verify:        VerifyDMR,
		Checkpoint:    &CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(2, checkpoint.WindowAfterAppend)},
	})
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}
	res, err := pl.RunMultiGPUStream(flippedSys(), gpu.MemAuto, bytes.NewReader(fasta), StreamConfig{
		BatchResidues: batchResidues,
		Verify:        VerifyDMR,
		Checkpoint:    &CheckpointConfig{Path: path, Resume: true},
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	sameHits(t, "dmr crash-resume", whole, res)
}

// TestStreamResumeAfterResumeConverges crashes the original run AND the
// first resume; the second resume must complete and match.
func TestStreamResumeAfterResumeConverges(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	_, err := ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(1, checkpoint.WindowAfterSync)}, nil)
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("first crash: %v", err)
	}
	// The resume replays >=1 batch, appends one more, then crashes too.
	_, err = ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Resume: true, Crash: checkpoint.CrashAfter(1, checkpoint.WindowAfterAppend)}, nil)
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("second crash: %v", err)
	}
	res, err := ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Resume: true}, nil)
	if err != nil {
		t.Fatalf("second resume failed: %v", err)
	}
	sameHits(t, "resume-after-resume", whole, res)
}

// TestStreamResumeRefusesFingerprintMismatch re-chunks with a different
// residue budget on resume: the config fingerprint must not match and
// the run must refuse rather than corrupt the merge.
func TestStreamResumeRefusesFingerprintMismatch(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	_, err := ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(1, checkpoint.WindowAfterSync)}, nil)
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}

	_, err = ckptRun(t, pl, fasta, batchResidues/2, 2,
		&CheckpointConfig{Path: path, Resume: true}, nil)
	var fpErr *checkpoint.FingerprintError
	if !errors.As(err, &fpErr) {
		t.Fatalf("resume with different -batchres returned %v, want FingerprintError", err)
	}
}

// TestStreamResumeRefusesCorruptJournal flips one payload bit on disk:
// resume must fail with a checksum error, never merge the bad record.
func TestStreamResumeRefusesCorruptJournal(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	_, err := ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(2, checkpoint.WindowAfterSync)}, nil)
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Resume: true}, nil)
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("resume of corrupt journal returned %v, want CorruptError", err)
	}
}

// TestStreamDrainThenResume drains a journaled run before it starts and
// resumes it: the two runs together must produce the full result.
func TestStreamDrainThenResume(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	drain := make(chan struct{})
	close(drain)
	res, err := ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path}, func(cfg *StreamConfig) { cfg.Drain = drain })
	if err != nil {
		t.Fatalf("drained run surfaced an error: %v", err)
	}
	extra := res.Extra.(*MultiGPUStreamExtra)
	if !extra.Drained {
		t.Fatal("run not marked drained")
	}

	res, err = ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Resume: true}, nil)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	sameHits(t, "drain-then-resume", whole, res)
}

// TestStreamResumeExportsCheckpointMetrics pins the hmmer_ckpt_*
// counters after a crash-and-resume cycle: with fsync-per-append and a
// crash after N appends in the after-append window, the resume replays
// exactly N intact records and drops exactly one torn tail.
func TestStreamResumeExportsCheckpointMetrics(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	_, err := ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Crash: checkpoint.CrashAfter(2, checkpoint.WindowAfterAppend)}, nil)
	if !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run returned %v, want ErrInjectedCrash", err)
	}

	reg := obs.NewRegistry()
	pl.Opts.Metrics = reg
	defer func() { pl.Opts.Metrics = nil }()
	_, err = ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: path, Resume: true}, nil)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	for name, want := range map[string]float64{
		"hmmer_ckpt_batches_replayed_total":     2,
		"hmmer_ckpt_batches_dropped_tail_total": 1,
	} {
		if v, ok := reg.Get(name); !ok || v != want {
			t.Errorf("%s = %v (present %v), want %v", name, v, ok, want)
		}
	}
	if v, ok := reg.Get("hmmer_ckpt_batches_journaled_total"); !ok || v < 1 {
		t.Errorf("hmmer_ckpt_batches_journaled_total = %v (present %v), want >= 1", v, ok)
	}
}

// TestStreamCheckpointRejectsAlignments: domain alignments are not
// encoded in journal records, so the combination must refuse upfront.
func TestStreamCheckpointRejectsAlignments(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	pl.Opts.ComputeAlignments = true
	defer func() { pl.Opts.ComputeAlignments = false }()
	_, err := ckptRun(t, pl, fasta, batchResidues, 2,
		&CheckpointConfig{Path: filepath.Join(t.TempDir(), "run.ckpt")}, nil)
	if err == nil {
		t.Fatal("journaling with ComputeAlignments accepted")
	}
}

// TestStreamContextCancelAborts cancels the context before the run: the
// scheduler must abort with ctx's error rather than drain or hang.
func TestStreamContextCancelAborts(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := simt.NewSystem(simt.GTX580(), 2)
	_, err := pl.RunMultiGPUStreamContext(ctx, sys, gpu.MemAuto, bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestRunCPUContextCancel checks the per-sequence cancellation path of
// the host engine used by fallback and DMR reruns.
func TestRunCPUContextCancel(t *testing.T) {
	h, err := workload.Model("ckpt-cancel", 60, abc, 31)
	if err != nil {
		t.Fatal(err)
	}
	db, _, _ := clusteredDB(t, h, 30, 5, 11)
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pl.RunCPUContext(ctx, db)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CPU run returned %v, want context.Canceled", err)
	}
}
