package pipeline

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

// clusteredDB builds a database whose homologs sit in one contiguous
// run in the middle (indexes [clusterLo, clusterHi)), so a batch
// boundary can split the cluster — the merge-correctness case a
// shuffled workload.Generate database cannot exercise.
func clusteredDB(t *testing.T, h *hmm.Plan7, nRandom, nHomologs int, seed int64) (*seq.Database, int, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bg := abc.Backgrounds()
	randomResidues := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			u, acc := rng.Float64(), 0.0
			out[i] = byte(len(bg) - 1)
			for r, f := range bg {
				acc += f
				if u < acc {
					out[i] = byte(r)
					break
				}
			}
		}
		return out
	}
	db := seq.NewDatabase("clustered")
	add := func(kind string, res []byte) {
		db.Add(&seq.Sequence{Name: fmt.Sprintf("%s_%03d", kind, db.NumSeqs()), Residues: res})
	}
	half := nRandom / 2
	for i := 0; i < half; i++ {
		add("bg", randomResidues(30+rng.Intn(250)))
	}
	clusterLo := db.NumSeqs()
	for i := 0; i < nHomologs; i++ {
		core := h.SampleSequence(rng)
		res := append(randomResidues(rng.Intn(40)), core...)
		res = append(res, randomResidues(rng.Intn(40))...)
		add("hom", res)
	}
	clusterHi := db.NumSeqs()
	for i := half; i < nRandom; i++ {
		add("bg", randomResidues(30+rng.Intn(250)))
	}
	return db, clusterLo, clusterHi
}

// sameHits asserts two results carry an identical hit list: same hit
// set, same global indexes, same scores and E-values.
func sameHits(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Hits) != len(got.Hits) {
		t.Fatalf("%s: hit counts differ: want %d, got %d", label, len(want.Hits), len(got.Hits))
	}
	for i := range want.Hits {
		a, b := want.Hits[i], got.Hits[i]
		if a.Index != b.Index || a.Name != b.Name {
			t.Errorf("%s: hit %d identity differs: %s@%d vs %s@%d", label, i, a.Name, a.Index, b.Name, b.Index)
		}
		if a.MSVBits != b.MSVBits || a.VitBits != b.VitBits || a.FwdBits != b.FwdBits {
			t.Errorf("%s: hit %d scores differ: %+v vs %+v", label, i, a, b)
		}
		if a.PValue != b.PValue || a.EValue != b.EValue {
			t.Errorf("%s: hit %d P/E-values differ: %g/%g vs %g/%g", label, i, a.PValue, a.EValue, b.PValue, b.EValue)
		}
	}
	if want.MSV.In != got.MSV.In || want.MSV.Out != got.MSV.Out ||
		want.Viterbi.In != got.Viterbi.In || want.Viterbi.Out != got.Viterbi.Out ||
		want.Forward.In != got.Forward.In || want.Forward.Out != got.Forward.Out {
		t.Errorf("%s: stage counts differ: MSV %d/%d vs %d/%d, Vit %d/%d vs %d/%d, Fwd %d/%d vs %d/%d",
			label,
			want.MSV.In, want.MSV.Out, got.MSV.In, got.MSV.Out,
			want.Viterbi.In, want.Viterbi.Out, got.Viterbi.In, got.Viterbi.Out,
			want.Forward.In, want.Forward.Out, got.Forward.In, got.Forward.Out)
	}
	if want.MSV.Cells != got.MSV.Cells || want.Viterbi.Cells != got.Viterbi.Cells {
		t.Errorf("%s: stage cells differ", label)
	}
}

func TestStreamsMatchWholeRunAcrossBatchSizes(t *testing.T) {
	h, err := workload.Model("split", 60, abc, 23)
	if err != nil {
		t.Fatal(err)
	}
	db, clusterLo, clusterHi := clusteredDB(t, h, 80, 12, 24)
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	whole, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Hits) < 6 {
		t.Fatalf("only %d hits; cluster too weak for a split test", len(whole.Hits))
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, db, abc); err != nil {
		t.Fatal(err)
	}

	// A batch size that puts a boundary inside the homolog cluster,
	// plus a smaller and a larger one.
	mid := (clusterLo + clusterHi) / 2
	if mid <= clusterLo || mid >= clusterHi {
		t.Fatalf("bad cluster geometry: [%d,%d)", clusterLo, clusterHi)
	}
	for _, batchSize := range []int{7, mid, db.NumSeqs() + 5} {
		boundary := batchSize
		splits := boundary > clusterLo && boundary < clusterHi
		res, err := pl.RunCPUStream(bytes.NewReader(fasta.Bytes()), batchSize)
		if err != nil {
			t.Fatal(err)
		}
		sameHits(t, fmt.Sprintf("cpu batchSize=%d (splitsCluster=%v)", batchSize, splits), whole, res)
	}

	// The multi-device stream must match too, across two residue
	// budgets; the mid-cluster sequence offset gives a budget whose
	// first boundary lands inside the cluster.
	var toMid int64
	for _, s := range db.Seqs[:mid] {
		toMid += int64(s.Len())
	}
	sys := simt.NewSystem(simt.GTX580(), 4)
	for _, budget := range []int64{db.TotalResidues() / 13, toMid} {
		res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()),
			StreamConfig{BatchResidues: budget})
		if err != nil {
			t.Fatal(err)
		}
		sameHits(t, fmt.Sprintf("multigpu budget=%d", budget), whole, res)
	}
}

func TestRunMultiGPUStreamMatchesSingleDeviceRunGPU(t *testing.T) {
	// Acceptance: a 4-device streamed run reports exactly the hits of a
	// single-device whole-database RunGPU — same hit set, indexes and
	// E-values — with per-device utilization observable.
	h, err := workload.Model("mstream", 80, abc, 25)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.EnvnrLike(0.0003, 26)
	spec.HomologFrac = 0.03
	db, err := workload.Generate(spec, h, abc)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	single, err := pl.RunGPU(simt.NewDevice(simt.GTX580()), gpu.MemAuto, db)
	if err != nil {
		t.Fatal(err)
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, db, abc); err != nil {
		t.Fatal(err)
	}

	sys := simt.NewSystem(simt.GTX580(), 4)
	res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta.Bytes()),
		StreamConfig{BatchResidues: db.TotalResidues() / 16})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "stream vs single-device RunGPU", single, res)

	extra, ok := res.Extra.(*MultiGPUStreamExtra)
	if !ok || extra.Schedule == nil {
		t.Fatal("stream extra missing")
	}
	rep := extra.Schedule
	if rep.Seqs != db.NumSeqs() || rep.Residues != db.TotalResidues() {
		t.Errorf("schedule totals %d seqs / %d residues, want %d / %d",
			rep.Seqs, rep.Residues, db.NumSeqs(), db.TotalResidues())
	}
	if len(rep.Util) != 4 {
		t.Fatalf("utilization for %d devices, want 4", len(rep.Util))
	}
	var batches int
	var residues int64
	for i, u := range rep.Util {
		batches += u.Batches
		residues += u.Residues
		if u.Batches > 0 && u.Busy <= 0 {
			t.Errorf("device %d served %d batches with zero busy time", i, u.Batches)
		}
		if len(extra.Launches[i]) < u.Batches {
			t.Errorf("device %d: %d launches for %d batches", i, len(extra.Launches[i]), u.Batches)
		}
	}
	if batches != rep.Batches || residues != rep.Residues {
		t.Errorf("utilization sums %d batches / %d residues, want %d / %d",
			batches, residues, rep.Batches, rep.Residues)
	}
	// ~16 equal batches over 4 devices: every device must have served
	// some of the stream.
	for i, u := range rep.Util {
		if u.Batches == 0 {
			t.Errorf("device %d served no batches", i)
		}
	}
}

func TestRunMultiGPUStreamValidation(t *testing.T) {
	pl := testPipeline(t, 40, 150)
	sys := simt.NewSystem(simt.GTX580(), 2)
	if _, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(nil), StreamConfig{}); err == nil {
		t.Error("zero batch residues accepted")
	}
	if _, err := pl.RunMultiGPUStream(nil, gpu.MemAuto, bytes.NewReader(nil), StreamConfig{BatchResidues: 100}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(nil), StreamConfig{BatchResidues: 100}); err == nil {
		t.Error("empty stream accepted")
	}
}
