package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/workload"
)

// faultStreamFixture builds a clustered workload, its FASTA bytes, the
// pipeline, and the fault-free whole-database reference result.
func faultStreamFixture(t *testing.T) (*Pipeline, []byte, *Result, int64) {
	t.Helper()
	h, err := workload.Model("chaos", 60, abc, 31)
	if err != nil {
		t.Fatal(err)
	}
	db, _, _ := clusteredDB(t, h, 60, 10, 32)
	pl, err := New(h, int(db.MeanLen()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	whole, err := pl.RunCPU(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Hits) < 4 {
		t.Fatalf("only %d hits; workload too weak", len(whole.Hits))
	}
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, db, abc); err != nil {
		t.Fatal(err)
	}
	// A residue budget that yields a handful of batches.
	batchResidues := db.TotalResidues() / 6
	return pl, fasta.Bytes(), whole, batchResidues
}

// A streamed run with seeded transient faults on two devices and one
// permanently dead device must complete with results bit-identical to
// the fault-free run.
func TestStreamFaultedRunMatchesClean(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)

	reg := obs.NewRegistry()
	pl.Opts.Metrics = reg
	defer func() { pl.Opts.Metrics = nil }()

	// The dead device only trips its quarantine when its worker claims a
	// batch; under heavy host load the healthy devices can occasionally
	// drain the whole stream first, so allow a few fresh attempts.
	var res *Result
	var rep *gpu.ScheduleReport
	for attempt := 0; attempt < 5; attempt++ {
		sys := simt.NewSystem(simt.GTX580(), 4)
		faults, err := simt.ParseFaults("0:p=0.3;1:at=1,hang=3;2:dead", 99, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ApplyFaults(faults); err != nil {
			t.Fatal(err)
		}
		res, err = pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta),
			StreamConfig{BatchResidues: batchResidues, MaxRetries: 8})
		if err != nil {
			t.Fatal(err)
		}
		sameHits(t, "faulted 4-device stream", whole, res)
		rep = res.Extra.(*MultiGPUStreamExtra).Schedule
		if rep.Faults.Devices[2].Quarantined {
			break
		}
	}
	if !rep.Faults.Any() {
		t.Fatal("fault report empty despite injected faults")
	}
	if rep.Faults.Retries == 0 {
		t.Error("no retries recorded for transient faults")
	}
	if !rep.Faults.Devices[2].Quarantined {
		t.Error("dead device 2 not quarantined")
	}
	if rep.Util[2].Batches != 0 {
		t.Errorf("dead device 2 credited %d completed batches", rep.Util[2].Batches)
	}
	for _, name := range []string{"hmmer_sched_retries_total", "hmmer_sched_requeues_total"} {
		if v, ok := reg.Get(name); !ok || v == 0 {
			t.Errorf("%s = %v (present %v), want > 0", name, v, ok)
		}
	}
	if v, ok := reg.Get(obs.WithLabel("hmmer_sched_device_quarantined", "device", "2")); !ok || v != 1 {
		t.Errorf("device 2 quarantine gauge = %v (present %v), want 1", v, ok)
	}
}

// With every device dead the stream must still complete — on the host
// CPU — with bit-identical results.
func TestStreamAllDevicesDeadFallsBackToCPU(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)

	sys := simt.NewSystem(simt.GTX580(), 2)
	faults, err := simt.ParseFaults("0:dead;1:dead", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ApplyFaults(faults); err != nil {
		t.Fatal(err)
	}
	res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "all-dead stream via cpu fallback", whole, res)
	rep := res.Extra.(*MultiGPUStreamExtra).Schedule
	if rep.Faults.Quarantines != 2 {
		t.Errorf("quarantines = %d, want 2", rep.Faults.Quarantines)
	}
	if rep.Faults.Fallbacks != rep.Batches {
		t.Errorf("fallback completed %d of %d batches", rep.Faults.Fallbacks, rep.Batches)
	}
}

func TestStreamFallbackDisabledFailsWhenAllDead(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	sys := simt.NewSystem(simt.GTX580(), 2)
	faults, err := simt.ParseFaults("0:dead;1:dead", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ApplyFaults(faults); err != nil {
		t.Fatal(err)
	}
	_, err = pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues, DisableFallback: true})
	if !errors.Is(err, gpu.ErrAllQuarantined) {
		t.Fatalf("err = %v, want ErrAllQuarantined", err)
	}
}

// A process error on a batch after the first (a transient fault with
// retries disabled) must surface as the run's error.
func TestStreamProcessErrorOnLaterBatch(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	sys := simt.NewSystem(simt.GTX580(), 2)
	// Launch ordinal 2 is a batch after the first on that device (each
	// batch issues at least one launch).
	sys.Devices[0].Faults = simt.NewFaultInjector(1).FailAt(2, simt.FaultLaunch)
	sys.Devices[1].Faults = simt.NewFaultInjector(1).FailAt(2, simt.FaultLaunch)
	_, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues, MaxRetries: -1, QuarantineAfter: -1})
	if !errors.Is(err, simt.ErrLaunchFailed) {
		t.Fatalf("err = %v, want wrapped ErrLaunchFailed", err)
	}
}

// A producer (FASTA parse) error mid-stream must abort the run and
// surface as the run's error.
func TestStreamProducerErrorMidStream(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	sys := simt.NewSystem(simt.GTX580(), 2)
	boom := errors.New("disk gone")
	r := io.MultiReader(bytes.NewReader(fasta[:len(fasta)/2]), &failingReader{err: boom})
	_, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, r,
		StreamConfig{BatchResidues: batchResidues})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the reader's error", err)
	}
}

type failingReader struct{ err error }

func (r *failingReader) Read([]byte) (int, error) { return 0, r.err }

func TestStreamContextCancellation(t *testing.T) {
	pl, fasta, _, batchResidues := faultStreamFixture(t)
	sys := simt.NewSystem(simt.GTX580(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pl.RunMultiGPUStreamContext(ctx, sys, gpu.MemAuto, bytes.NewReader(fasta),
		StreamConfig{BatchResidues: batchResidues})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Two identically seeded faulted runs must inject the same fault
// schedule and report identical fault totals — the reproducibility the
// chaos CI job depends on.
func TestStreamSeededFaultDeterminism(t *testing.T) {
	pl, fasta, whole, batchResidues := faultStreamFixture(t)
	run := func() (*Result, *gpu.ScheduleReport) {
		sys := simt.NewSystem(simt.GTX580(), 3)
		faults, err := simt.ParseFaults("0:at=0,at=2;1:at=1;2:dead", 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ApplyFaults(faults); err != nil {
			t.Fatal(err)
		}
		res, err := pl.RunMultiGPUStream(sys, gpu.MemAuto, bytes.NewReader(fasta),
			StreamConfig{BatchResidues: batchResidues, MaxRetries: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Extra.(*MultiGPUStreamExtra).Schedule
	}
	res1, rep1 := run()
	res2, rep2 := run()
	sameHits(t, "seeded fault run 1 vs clean", whole, res1)
	sameHits(t, "seeded fault run 2 vs run 1", res1, res2)
	if fmt.Sprint(rep1.Faults.Devices) != fmt.Sprint(rep2.Faults.Devices) {
		t.Errorf("per-device fault stats differ across identically seeded runs:\n%+v\n%+v",
			rep1.Faults.Devices, rep2.Faults.Devices)
	}
}
