package pipeline

import (
	"sort"
	"time"

	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
)

// CPUExtra carries the CPU engine's bookkeeping.
type CPUExtra struct {
	// MSVResults holds the raw per-sequence MSV filter results.
	MSVResults []cpu.FilterResult
}

// RunCPU executes the pipeline with the striped multicore CPU engine —
// the paper's baseline configuration.
func (pl *Pipeline) RunCPU(db *seq.Database) (*Result, error) {
	eng := cpu.Engine{Workers: pl.Opts.Workers}
	result := &Result{}

	start := time.Now()
	msvRes := eng.MSVAll(pl.MSV, db)
	result.MSV.Wall = time.Since(start)
	result.MSV.In = db.NumSeqs()
	result.MSV.Cells = db.TotalResidues() * int64(pl.Prof.M)

	msvBits := make(map[int]float64)
	var msvSurvivors []int
	for i, res := range msvRes {
		if pl.msvPass(res) {
			msvSurvivors = append(msvSurvivors, i)
			msvBits[i] = bitsOf(res)
		}
	}
	result.MSV.Out = len(msvSurvivors)

	start = time.Now()
	sub := subDatabase(db, msvSurvivors)
	vitRes := eng.ViterbiAll(pl.Vit, sub)
	result.Viterbi.Wall = time.Since(start)
	result.Viterbi.In = len(msvSurvivors)
	result.Viterbi.Cells = sub.TotalResidues() * int64(pl.Prof.M)

	vitBits := make(map[int]float64)
	var vitSurvivors []int
	for j, res := range vitRes {
		if pl.vitPass(res) {
			idx := msvSurvivors[j]
			vitSurvivors = append(vitSurvivors, idx)
			vitBits[idx] = bitsOf(res)
		}
	}
	result.Viterbi.Out = len(vitSurvivors)

	pl.finishForward(db, vitSurvivors, msvBits, vitBits, result)
	result.Extra = &CPUExtra{MSVResults: msvRes}
	return result, nil
}

// GPUExtra carries the GPU engine's launch reports for the perf model.
type GPUExtra struct {
	MSVReport *gpu.SearchReport
	VitReport *gpu.SearchReport
	// FwdReport is set when Options.GPUForward ran the Forward stage
	// on the device.
	FwdReport *gpu.SearchReport
}

// RunGPU executes the MSV and P7Viterbi stages on the device (the
// paper's accelerated configuration) with the Forward stage on the
// host, as in the paper.
func (pl *Pipeline) RunGPU(dev *simt.Device, mem gpu.MemConfig, db *seq.Database) (*Result, error) {
	searcher := &gpu.Searcher{Dev: dev, Mem: mem, HostWorkers: pl.Opts.Workers}
	result := &Result{}
	extra := &GPUExtra{}

	start := time.Now()
	ddb := gpu.UploadDB(dev, db)
	dmp := gpu.UploadMSVProfile(dev, pl.MSV)
	msvRep, err := searcher.MSVSearch(dmp, ddb)
	if err != nil {
		return nil, err
	}
	result.MSV.Wall = time.Since(start)
	result.MSV.In = db.NumSeqs()
	result.MSV.Cells = db.TotalResidues() * int64(pl.Prof.M)
	extra.MSVReport = msvRep

	msvBits := make(map[int]float64)
	var msvSurvivors []int
	for i, res := range msvRep.Results {
		if pl.msvPass(res) {
			msvSurvivors = append(msvSurvivors, i)
			msvBits[i] = bitsOf(res)
		}
	}
	result.MSV.Out = len(msvSurvivors)

	start = time.Now()
	sub := subDatabase(db, msvSurvivors)
	subDev := gpu.UploadDB(dev, sub)
	dvp := gpu.UploadVitProfile(dev, pl.Vit)
	var vitSurvivors []int
	vitBits := make(map[int]float64)
	if sub.NumSeqs() > 0 {
		vitRep, err := searcher.ViterbiSearch(dvp, subDev)
		if err != nil {
			return nil, err
		}
		extra.VitReport = vitRep
		for j, res := range vitRep.Results {
			if pl.vitPass(res) {
				idx := msvSurvivors[j]
				vitSurvivors = append(vitSurvivors, idx)
				vitBits[idx] = bitsOf(res)
			}
		}
	}
	result.Viterbi.Wall = time.Since(start)
	result.Viterbi.In = len(msvSurvivors)
	result.Viterbi.Cells = sub.TotalResidues() * int64(pl.Prof.M)
	result.Viterbi.Out = len(vitSurvivors)

	if pl.Opts.GPUForward && !pl.Opts.SkipForward {
		if err := pl.gpuForward(dev, searcher, db, vitSurvivors, msvBits, vitBits, result, extra); err != nil {
			return nil, err
		}
	} else {
		pl.finishForward(db, vitSurvivors, msvBits, vitBits, result)
	}
	result.Extra = extra
	return result, nil
}

// gpuForward runs the Forward stage on the device (the heterogeneous
// extension): scores come from the float32 kernel, thresholds and
// E-values from the same calibrated exponential tail.
func (pl *Pipeline) gpuForward(dev *simt.Device, searcher *gpu.Searcher, db *seq.Database,
	survivors []int, msvBits, vitBits map[int]float64, result *Result, extra *GPUExtra) error {

	start := time.Now()
	result.Forward.In = len(survivors)
	if len(survivors) == 0 {
		return nil
	}
	sub := subDatabase(db, survivors)
	ddb := gpu.UploadDB(dev, sub)
	fp := gpu.UploadFwdProfile(dev, pl.Prof)
	rep, scores, err := searcher.ForwardSearch(fp, ddb)
	if err != nil {
		return err
	}
	extra.FwdReport = rep
	result.Forward.Cells = sub.TotalResidues() * int64(pl.Prof.M)
	for j, idx := range survivors {
		dsq := db.Seqs[idx].Residues
		fwdNats := scores[j].Score
		po := pl.maybeDecode(dsq)
		if pl.Opts.UseNull2 && po != nil {
			fwdNats -= refimpl.Null2Correction(pl.Prof, dsq, po)
		}
		fwdBits := stats.BitsFromNats(fwdNats)
		pv := pl.FwdExp.Surv(fwdBits)
		if pv > pl.Opts.Thresholds.Forward {
			continue
		}
		hit := Hit{
			Index:   idx,
			Name:    db.Seqs[idx].Name,
			MSVBits: msvBits[idx],
			VitBits: vitBits[idx],
			FwdBits: fwdBits,
			PValue:  pv,
			EValue:  stats.EValue(pv, db.NumSeqs()),
		}
		pl.annotate(&hit, dsq, po)
		result.Hits = append(result.Hits, hit)
	}
	result.Forward.Out = len(result.Hits)
	result.Forward.Wall = time.Since(start)
	sort.Slice(result.Hits, func(i, j int) bool {
		if result.Hits[i].EValue != result.Hits[j].EValue {
			return result.Hits[i].EValue < result.Hits[j].EValue
		}
		return result.Hits[i].Index < result.Hits[j].Index
	})
	return nil
}

// MultiGPUExtra carries the per-device reports.
type MultiGPUExtra struct {
	MSV *gpu.MultiReport
	Vit *gpu.MultiReport
}

// RunMultiGPU executes the filter stages across all devices of a
// system (the paper's 4x GTX 580 configuration).
func (pl *Pipeline) RunMultiGPU(sys *simt.System, mem gpu.MemConfig, db *seq.Database) (*Result, error) {
	ms := &gpu.MultiSearcher{Sys: sys, Mem: mem, HostWorkers: pl.Opts.Workers}
	result := &Result{}
	extra := &MultiGPUExtra{}

	msvRep, err := ms.MSVSearch(pl.MSV, db)
	if err != nil {
		return nil, err
	}
	extra.MSV = msvRep
	result.MSV.In = db.NumSeqs()
	result.MSV.Cells = db.TotalResidues() * int64(pl.Prof.M)

	msvBits := make(map[int]float64)
	var msvSurvivors []int
	for i, res := range msvRep.Results {
		if pl.msvPass(res) {
			msvSurvivors = append(msvSurvivors, i)
			msvBits[i] = bitsOf(res)
		}
	}
	result.MSV.Out = len(msvSurvivors)

	sub := subDatabase(db, msvSurvivors)
	var vitSurvivors []int
	vitBits := make(map[int]float64)
	if sub.NumSeqs() > 0 {
		vitRep, err := ms.ViterbiSearch(pl.Vit, sub)
		if err != nil {
			return nil, err
		}
		extra.Vit = vitRep
		for j, res := range vitRep.Results {
			if pl.vitPass(res) {
				idx := msvSurvivors[j]
				vitSurvivors = append(vitSurvivors, idx)
				vitBits[idx] = bitsOf(res)
			}
		}
	}
	result.Viterbi.In = len(msvSurvivors)
	result.Viterbi.Cells = sub.TotalResidues() * int64(pl.Prof.M)
	result.Viterbi.Out = len(vitSurvivors)

	pl.finishForward(db, vitSurvivors, msvBits, vitBits, result)
	result.Extra = extra
	return result, nil
}

// subDatabase builds a view holding the sequences at the given indexes.
func subDatabase(db *seq.Database, idx []int) *seq.Database {
	sub := seq.NewDatabase(db.Name + "-survivors")
	for _, i := range idx {
		sub.Add(db.Seqs[i])
	}
	return sub
}
