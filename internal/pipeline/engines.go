package pipeline

import (
	"context"
	"errors"
	"sort"
	"time"

	"hmmer3gpu/internal/cpu"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/perf"
	"hmmer3gpu/internal/refimpl"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
	"hmmer3gpu/internal/stats"
)

// ctxErr maps a kernel launch aborted by ctx back to ctx's error, so
// context-aware engines report context.Canceled / DeadlineExceeded
// rather than the simulator's internal sentinel.
func ctxErr(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil && errors.Is(err, simt.ErrLaunchCanceled) {
		return ctx.Err()
	}
	return err
}

// CPUExtra carries the CPU engine's bookkeeping.
type CPUExtra struct {
	// MSVResults holds the raw per-sequence MSV filter results.
	MSVResults []cpu.FilterResult
}

// RunCPU executes the pipeline with the striped multicore CPU engine —
// the paper's baseline configuration.
func (pl *Pipeline) RunCPU(db *seq.Database) (*Result, error) {
	return pl.RunCPUContext(context.Background(), db)
}

// RunCPUContext is RunCPU with cancellation: ctx is checked before
// every sequence in the filter stages and before every Forward
// rescore, so a deadline stops the engine mid-database rather than at
// the next stage boundary.
func (pl *Pipeline) RunCPUContext(ctx context.Context, db *seq.Database) (*Result, error) {
	root := pl.startSearch("cpu", db)
	defer root.End()
	result, err := pl.runCPUContext(ctx, db, root)
	if err == nil {
		result.Record(pl.Opts.Metrics)
	}
	return result, err
}

// runCPU is the CPU engine body; root (nilable) parents the stage
// spans, so the streamed engine can nest batches between the search
// span and the stages.
func (pl *Pipeline) runCPU(db *seq.Database, root *obs.Span) (*Result, error) {
	return pl.runCPUContext(context.Background(), db, root)
}

// runCPUContext is runCPU with per-sequence cancellation checks in
// every stage.
func (pl *Pipeline) runCPUContext(ctx context.Context, db *seq.Database, root *obs.Span) (*Result, error) {
	eng := cpu.Engine{Workers: pl.Opts.Workers}
	result := &Result{}

	start := time.Now()
	_, endMSV := startStage(root, "msv")
	msvRes, err := eng.MSVAllContext(ctx, pl.MSV, db)
	if err != nil {
		return nil, err
	}
	result.MSV.Wall = time.Since(start)
	result.MSV.In = db.NumSeqs()
	result.MSV.Cells = db.TotalResidues() * int64(pl.Prof.M)

	msvBits := make(map[int]float64)
	var msvSurvivors []int
	for i, res := range msvRes {
		if pl.msvPass(res) {
			msvSurvivors = append(msvSurvivors, i)
			msvBits[i] = bitsOf(res)
		}
	}
	result.MSV.Out = len(msvSurvivors)
	endMSV(&result.MSV)

	start = time.Now()
	_, endVit := startStage(root, "viterbi")
	sub := subDatabase(db, msvSurvivors)
	vitRes, err := eng.ViterbiAllContext(ctx, pl.Vit, sub)
	if err != nil {
		return nil, err
	}
	result.Viterbi.Wall = time.Since(start)
	result.Viterbi.In = len(msvSurvivors)
	result.Viterbi.Cells = sub.TotalResidues() * int64(pl.Prof.M)

	vitBits := make(map[int]float64)
	var vitSurvivors []int
	for j, res := range vitRes {
		if pl.vitPass(res) {
			idx := msvSurvivors[j]
			vitSurvivors = append(vitSurvivors, idx)
			vitBits[idx] = bitsOf(res)
		}
	}
	result.Viterbi.Out = len(vitSurvivors)
	endVit(&result.Viterbi)

	if err := pl.finishForward(ctx, db, vitSurvivors, msvBits, vitBits, result, root); err != nil {
		return nil, err
	}
	result.Extra = &CPUExtra{MSVResults: msvRes}
	return result, nil
}

// GPUExtra carries the GPU engine's launch reports for the perf model.
type GPUExtra struct {
	MSVReport *gpu.SearchReport
	VitReport *gpu.SearchReport
	// FwdReport is set when Options.GPUForward ran the Forward stage
	// on the device.
	FwdReport *gpu.SearchReport
}

// RunGPU executes the MSV and P7Viterbi stages on the device (the
// paper's accelerated configuration) with the Forward stage on the
// host, as in the paper.
func (pl *Pipeline) RunGPU(dev *simt.Device, mem gpu.MemConfig, db *seq.Database) (*Result, error) {
	return pl.RunGPUContext(context.Background(), dev, mem, db)
}

// RunGPUContext is RunGPU with cancellation: kernel launches poll
// ctx.Done() between blocks (mid-kernel cancellation), and the host
// Forward stage checks ctx before every survivor.
func (pl *Pipeline) RunGPUContext(ctx context.Context, dev *simt.Device, mem gpu.MemConfig, db *seq.Database) (*Result, error) {
	root := pl.startSearch("gpu", db)
	defer root.End()
	pl.attachProfiler(mem, dev)
	searcher := &gpu.Searcher{Dev: dev, Mem: mem, HostWorkers: pl.Opts.Workers, Cancel: ctx.Done()}
	result := &Result{}
	extra := &GPUExtra{}

	start := time.Now()
	msvSpan, endMSV := startStage(root, "msv")
	searcher.Trace = msvSpan
	ddb := gpu.UploadDB(dev, db)
	dmp := gpu.UploadMSVProfile(dev, pl.MSV)
	msvRep, err := searcher.MSVSearch(dmp, ddb)
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	result.MSV.Wall = time.Since(start)
	result.MSV.In = db.NumSeqs()
	result.MSV.Cells = db.TotalResidues() * int64(pl.Prof.M)
	extra.MSVReport = msvRep

	msvBits := make(map[int]float64)
	var msvSurvivors []int
	for i, res := range msvRep.Results {
		if pl.msvPass(res) {
			msvSurvivors = append(msvSurvivors, i)
			msvBits[i] = bitsOf(res)
		}
	}
	result.MSV.Out = len(msvSurvivors)
	endMSV(&result.MSV)

	start = time.Now()
	vitSpan, endVit := startStage(root, "viterbi")
	searcher.Trace = vitSpan
	sub := subDatabase(db, msvSurvivors)
	subDev := gpu.UploadDB(dev, sub)
	dvp := gpu.UploadVitProfile(dev, pl.Vit)
	var vitSurvivors []int
	vitBits := make(map[int]float64)
	if sub.NumSeqs() > 0 {
		vitRep, err := searcher.ViterbiSearch(dvp, subDev)
		if err != nil {
			return nil, ctxErr(ctx, err)
		}
		extra.VitReport = vitRep
		for j, res := range vitRep.Results {
			if pl.vitPass(res) {
				idx := msvSurvivors[j]
				vitSurvivors = append(vitSurvivors, idx)
				vitBits[idx] = bitsOf(res)
			}
		}
	}
	result.Viterbi.Wall = time.Since(start)
	result.Viterbi.In = len(msvSurvivors)
	result.Viterbi.Cells = sub.TotalResidues() * int64(pl.Prof.M)
	result.Viterbi.Out = len(vitSurvivors)
	endVit(&result.Viterbi)

	if pl.Opts.GPUForward && !pl.Opts.SkipForward {
		if err := pl.gpuForward(ctx, dev, searcher, db, vitSurvivors, msvBits, vitBits, result, extra, root); err != nil {
			return nil, err
		}
	} else {
		searcher.Trace = nil
		if err := pl.finishForward(ctx, db, vitSurvivors, msvBits, vitBits, result, root); err != nil {
			return nil, err
		}
	}
	result.Extra = extra
	if reg := pl.Opts.Metrics; reg.Enabled() {
		result.Record(reg)
		if extra.MSVReport != nil {
			perf.Record(reg, dev.Spec, "msv", extra.MSVReport.Launch)
		}
		if extra.VitReport != nil {
			perf.Record(reg, dev.Spec, "p7viterbi", extra.VitReport.Launch)
		}
		if extra.FwdReport != nil {
			perf.Record(reg, dev.Spec, "forward", extra.FwdReport.Launch)
		}
	}
	return result, nil
}

// gpuForward runs the Forward stage on the device (the heterogeneous
// extension): scores come from the float32 kernel, thresholds and
// E-values from the same calibrated exponential tail.
func (pl *Pipeline) gpuForward(ctx context.Context, dev *simt.Device, searcher *gpu.Searcher, db *seq.Database,
	survivors []int, msvBits, vitBits map[int]float64, result *Result, extra *GPUExtra,
	root *obs.Span) error {

	start := time.Now()
	result.Forward.In = len(survivors)
	if len(survivors) == 0 {
		return nil
	}
	fwdSpan, endFwd := startStage(root, "forward")
	searcher.Trace = fwdSpan
	defer func() { endFwd(&result.Forward) }()
	sub := subDatabase(db, survivors)
	ddb := gpu.UploadDB(dev, sub)
	fp := gpu.UploadFwdProfile(dev, pl.Prof)
	rep, scores, err := searcher.ForwardSearch(fp, ddb)
	if err != nil {
		return ctxErr(ctx, err)
	}
	extra.FwdReport = rep
	result.Forward.Cells = sub.TotalResidues() * int64(pl.Prof.M)
	for j, idx := range survivors {
		if err := ctx.Err(); err != nil {
			return err
		}
		dsq := db.Seqs[idx].Residues
		fwdNats := scores[j].Score
		po := pl.maybeDecode(dsq)
		if pl.Opts.UseNull2 && po != nil {
			fwdNats -= refimpl.Null2Correction(pl.Prof, dsq, po)
		}
		fwdBits := stats.BitsFromNats(fwdNats)
		pv := pl.FwdExp.Surv(fwdBits)
		if pv > pl.Opts.Thresholds.Forward {
			continue
		}
		hit := Hit{
			Index:   idx,
			Name:    db.Seqs[idx].Name,
			MSVBits: msvBits[idx],
			VitBits: vitBits[idx],
			FwdBits: fwdBits,
			PValue:  pv,
			EValue:  stats.EValue(pv, db.NumSeqs()),
		}
		pl.annotate(&hit, dsq, po)
		result.Hits = append(result.Hits, hit)
	}
	result.Forward.Out = len(result.Hits)
	result.Forward.Wall = time.Since(start)
	sort.Slice(result.Hits, func(i, j int) bool {
		if result.Hits[i].EValue != result.Hits[j].EValue {
			return result.Hits[i].EValue < result.Hits[j].EValue
		}
		return result.Hits[i].Index < result.Hits[j].Index
	})
	return nil
}

// MultiGPUExtra carries the per-device reports.
type MultiGPUExtra struct {
	MSV *gpu.MultiReport
	Vit *gpu.MultiReport
}

// RunMultiGPU executes the filter stages across all devices of a
// system (the paper's 4x GTX 580 configuration).
func (pl *Pipeline) RunMultiGPU(sys *simt.System, mem gpu.MemConfig, db *seq.Database) (*Result, error) {
	return pl.RunMultiGPUContext(context.Background(), sys, mem, db)
}

// RunMultiGPUContext is RunMultiGPU with cancellation; every shard's
// launch polls ctx.Done() between blocks.
func (pl *Pipeline) RunMultiGPUContext(ctx context.Context, sys *simt.System, mem gpu.MemConfig, db *seq.Database) (*Result, error) {
	root := pl.startSearch("multigpu", db)
	defer root.End()
	pl.attachProfiler(mem, sys.Devices...)
	ms := &gpu.MultiSearcher{Sys: sys, Mem: mem, HostWorkers: pl.Opts.Workers, Cancel: ctx.Done()}
	result := &Result{}
	extra := &MultiGPUExtra{}

	start := time.Now()
	msvSpan, endMSV := startStage(root, "msv")
	ms.Trace = msvSpan
	msvRep, err := ms.MSVSearch(pl.MSV, db)
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	extra.MSV = msvRep
	result.MSV.Wall = time.Since(start)
	result.MSV.In = db.NumSeqs()
	result.MSV.Cells = db.TotalResidues() * int64(pl.Prof.M)

	msvBits := make(map[int]float64)
	var msvSurvivors []int
	for i, res := range msvRep.Results {
		if pl.msvPass(res) {
			msvSurvivors = append(msvSurvivors, i)
			msvBits[i] = bitsOf(res)
		}
	}
	result.MSV.Out = len(msvSurvivors)
	endMSV(&result.MSV)

	start = time.Now()
	vitSpan, endVit := startStage(root, "viterbi")
	ms.Trace = vitSpan
	sub := subDatabase(db, msvSurvivors)
	var vitSurvivors []int
	vitBits := make(map[int]float64)
	if sub.NumSeqs() > 0 {
		vitRep, err := ms.ViterbiSearch(pl.Vit, sub)
		if err != nil {
			return nil, ctxErr(ctx, err)
		}
		extra.Vit = vitRep
		for j, res := range vitRep.Results {
			if pl.vitPass(res) {
				idx := msvSurvivors[j]
				vitSurvivors = append(vitSurvivors, idx)
				vitBits[idx] = bitsOf(res)
			}
		}
	}
	result.Viterbi.Wall = time.Since(start)
	result.Viterbi.In = len(msvSurvivors)
	result.Viterbi.Cells = sub.TotalResidues() * int64(pl.Prof.M)
	result.Viterbi.Out = len(vitSurvivors)
	endVit(&result.Viterbi)

	if err := pl.finishForward(ctx, db, vitSurvivors, msvBits, vitBits, result, root); err != nil {
		return nil, err
	}
	result.Extra = extra
	if reg := pl.Opts.Metrics; reg.Enabled() {
		result.Record(reg)
		if len(sys.Devices) > 0 {
			spec := sys.Devices[0].Spec
			if extra.MSV != nil {
				perf.Record(reg, spec, "msv", launchesOf(extra.MSV)...)
			}
			if extra.Vit != nil {
				perf.Record(reg, spec, "p7viterbi", launchesOf(extra.Vit)...)
			}
		}
	}
	return result, nil
}

// launchesOf flattens a multi-device report's launch reports.
func launchesOf(mr *gpu.MultiReport) []*simt.LaunchReport {
	var out []*simt.LaunchReport
	for _, rep := range mr.PerDevice {
		if rep != nil {
			out = append(out, rep.Launch)
		}
	}
	return out
}

// subDatabase builds a view holding the sequences at the given indexes.
func subDatabase(db *seq.Database, idx []int) *seq.Database {
	sub := seq.NewDatabase(db.Name + "-survivors")
	for _, i := range idx {
		sub.Add(db.Seqs[i])
	}
	return sub
}
