// Package obsio wires the optional observability sinks — span tracer,
// metrics registry, kernel-profile collector — to their output files.
// It is the one place the -trace/-traceformat/-metrics/-kprof flag
// quartet is interpreted, shared by hmmsearch, hmmworker, and
// hmmserved so every binary emits the same artifact formats.
//
// Sinks are created only for the flags actually given, so an
// unobserved run keeps the nil fast path end to end (obs and kernprof
// are zero-cost when their handles are nil).
package obsio

import (
	"fmt"
	"os"

	"hmmer3gpu/internal/kernprof"
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/pipeline"
)

// Sinks holds a run's optional observability outputs. The zero value
// (or New with four empty paths) is inert: Apply installs nils and
// Flush writes nothing.
type Sinks struct {
	Tracer    *obs.Tracer
	Registry  *obs.Registry
	Collector *kernprof.Collector

	tracePath, traceFmt string
	metricsPath         string
	kprofPath           string
}

// New builds the sinks for the given output paths; an empty path
// disables that sink. traceFmt must be "chrome" or "jsonl" when
// tracePath is set.
func New(tracePath, traceFmt, metricsPath, kprofPath string) (*Sinks, error) {
	s := &Sinks{tracePath: tracePath, traceFmt: traceFmt,
		metricsPath: metricsPath, kprofPath: kprofPath}
	if tracePath != "" {
		if traceFmt != "chrome" && traceFmt != "jsonl" {
			return nil, fmt.Errorf("unknown trace format %q (want chrome or jsonl)", traceFmt)
		}
		s.Tracer = obs.New()
	}
	if metricsPath != "" {
		s.Registry = obs.NewRegistry()
	}
	if kprofPath != "" {
		s.Collector = kernprof.NewCollector()
	}
	return s, nil
}

// Apply attaches the sinks to the pipeline options. Options.Profiler
// is a concrete *kernprof.Collector, so a nil Collector stays nil here;
// the typed-nil hazard lives one layer down, where the collector is
// assigned to the Device.Profiler interface (pipeline.attachProfiler
// and bench both guard it).
func (s *Sinks) Apply(opts *pipeline.Options) {
	opts.Trace = s.Tracer
	opts.Metrics = s.Registry
	opts.Profiler = s.Collector
}

// Flush writes the kernel profile, trace, and metrics files. The
// kernel profile merges into the registry first, so -kprof counters
// also land in the -metrics Prometheus output. logf (nilable) receives
// one line per artifact written.
func (s *Sinks) Flush(logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if s.Collector != nil {
		prof := s.Collector.Profile()
		prof.Record(s.Registry)
		if err := prof.WriteFile(s.kprofPath); err != nil {
			return err
		}
		logf("kernel profile (%d launches) written to %s; render with: hmmprof %s",
			len(prof.Launches), s.kprofPath, s.kprofPath)
	}
	if s.Tracer != nil {
		fh, err := os.Create(s.tracePath)
		if err != nil {
			return err
		}
		if s.traceFmt == "jsonl" {
			err = s.Tracer.WriteJSONL(fh)
		} else {
			err = s.Tracer.WriteChromeTraceWithCounters(fh, s.Registry)
		}
		if err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		logf("trace (%s, %d spans) written to %s", s.traceFmt, len(s.Tracer.Spans()), s.tracePath)
	}
	if s.Registry != nil {
		fh, err := os.Create(s.metricsPath)
		if err != nil {
			return err
		}
		if err := s.Registry.WritePrometheus(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		logf("metrics (%d series) written to %s", len(s.Registry.Snapshot()), s.metricsPath)
	}
	return nil
}
