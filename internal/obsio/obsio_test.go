package obsio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmmer3gpu/internal/pipeline"
)

func TestInertWhenUnconfigured(t *testing.T) {
	s, err := New("", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	var opts pipeline.Options
	s.Apply(&opts)
	if opts.Trace != nil || opts.Metrics != nil || opts.Profiler != nil {
		t.Error("empty sinks installed non-nil handles")
	}
	if err := s.Flush(nil); err != nil {
		t.Errorf("inert flush: %v", err)
	}
}

func TestRejectsUnknownTraceFormat(t *testing.T) {
	if _, err := New("x.trace", "protobuf", "", ""); err == nil {
		t.Fatal("unknown trace format accepted")
	}
}

func TestFlushWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace")
	metricsPath := filepath.Join(dir, "run.prom")
	s, err := New(tracePath, "jsonl", metricsPath, "")
	if err != nil {
		t.Fatal(err)
	}
	sp := s.Tracer.Start("host", "search")
	sp.End()
	s.Registry.AddInt("test_total", 3)
	var lines []string
	if err := s.Flush(func(format string, args ...any) {
		lines = append(lines, format)
	}); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Errorf("expected 2 artifact log lines, got %d", len(lines))
	}
	for _, p := range []string{tracePath, metricsPath} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		if len(b) == 0 {
			t.Errorf("artifact %s is empty", p)
		}
	}
	b, _ := os.ReadFile(metricsPath)
	if !strings.Contains(string(b), "test_total") {
		t.Error("metrics file missing counter")
	}
}
