package profile

import (
	"math"

	"hmmer3gpu/internal/satmath"
)

// Viterbi filter quantisation. Scores are signed 16-bit words at
// VitScale units per nat, with satmath.NegInf16 standing in for minus
// infinity. The representable range (±~218 nats) covers everything
// short of extremely strong hits; those saturate high and the filter
// reports +inf, passing the sequence onward — the same behaviour as
// HMMER3's ViterbiFilter.
const (
	// VitScale is the number of word units per nat.
	VitScale = 150.0
	// vitNatCorrection mirrors the MSV filter's N/C/J loop correction.
	vitNatCorrection = 3.0
)

// VitProfile is the 16-bit quantised profile for the P7Viterbi filter.
type VitProfile struct {
	Name string
	M    int

	// MatUnit[r][k] is the quantised match emission log-odds for
	// residue code r at node k (NegInf16 for gap-like codes and k=0).
	// Insert emission scores are zero by construction and not stored.
	MatUnit [][]int16

	// Quantised transition scores out of node k (same indexing as
	// Profile: TMM[k] is M_k -> M_{k+1}).
	TMM, TMI, TMD, TIM, TII, TDM, TDD []int16

	// TBM is the quantised uniform local entry score (negative).
	TBM int16
	// TEC and TEJ are the E->C / E->J scores (ln 0.5).
	TEC, TEJ int16
	// TMove is the N->B / J->B / C->T move score; set by SetLength.
	TMove int16
	// L is the configured target length.
	L int
	// TMoveNats keeps the exact move score for the final conversion.
	TMoveNats float64
}

// NewVitProfile quantises a configured search profile for the 16-bit
// Viterbi filter.
func NewVitProfile(p *Profile) *VitProfile {
	vp := &VitProfile{Name: p.Name, M: p.M}
	vp.MatUnit = make([][]int16, p.Abc.SizeAll())
	for r := range vp.MatUnit {
		row := make([]int16, p.M+1)
		row[0] = satmath.NegInf16
		for k := 1; k <= p.M; k++ {
			row[k] = vitUnits(p.MSC[r][k])
		}
		vp.MatUnit[r] = row
	}
	quant := func(src []float64) []int16 {
		out := make([]int16, len(src))
		for i, v := range src {
			out[i] = vitUnits(v)
		}
		return out
	}
	vp.TMM, vp.TMI, vp.TMD = quant(p.TMM), quant(p.TMI), quant(p.TMD)
	vp.TIM, vp.TII = quant(p.TIM), quant(p.TII)
	vp.TDM, vp.TDD = quant(p.TDM), quant(p.TDD)
	vp.TBM = vitUnits(p.TBM)
	vp.TEC = vitUnits(p.TEC)
	vp.TEJ = vitUnits(p.TEJ)
	if p.L > 0 {
		vp.SetLength(p.L)
	}
	return vp
}

// SetLength configures the length-dependent move score.
func (vp *VitProfile) SetLength(L int) {
	vp.L = L
	fl := float64(L)
	vp.TMoveNats = math.Log(3 / (fl + 3))
	vp.TMove = vitUnits(vp.TMoveNats)
}

// ScoreToNats converts a final filter xC word back to a natural-log
// score, including the terminal move cost and the loop correction.
func (vp *VitProfile) ScoreToNats(xC int16) float64 {
	return (float64(xC)+float64(vp.TMove))/VitScale - vitNatCorrection
}

// Overflowed reports whether a final xC value hit the top of the
// 16-bit range, in which case the true score is unrepresentable and
// the filter must report +inf.
func Overflowed(xC int16) bool { return xC >= 32767 }

// MatchUnit returns the quantised match score for residue r at node k,
// tolerating out-of-range codes (NegInf16).
func (vp *VitProfile) MatchUnit(r byte, k int) int16 {
	if int(r) >= len(vp.MatUnit) || k < 1 || k > vp.M {
		return satmath.NegInf16
	}
	return vp.MatUnit[r][k]
}

// vitUnits quantises a nat score to 16-bit units, clamping to the
// representable range with NegInf16 reserved for minus infinity.
func vitUnits(sc float64) int16 {
	if math.IsInf(sc, -1) {
		return satmath.NegInf16
	}
	u := math.Round(sc * VitScale)
	if u <= -32768 {
		return -32767 // keep NegInf16 distinct from very bad finite scores
	}
	if u > 32767 {
		return 32767
	}
	return int16(u)
}
