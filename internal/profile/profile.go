// Package profile turns a Plan7 core model into search profiles: the
// full-precision log-odds profile used by the reference and Forward
// implementations, and the quantised 8-bit MSV and 16-bit Viterbi
// filter profiles used by the accelerated engines.
//
// Configuration follows HMMER3's multihit local mode with two
// documented simplifications, both applied consistently across every
// engine in this repository so that cross-engine score comparisons are
// exact:
//
//   - local entry B->M_k is uniform, 2/(M(M+1)) (the MSV entry
//     distribution), rather than HMMER3's occupancy-weighted entry;
//   - insert emission log-odds are zero (HMMER3 does this too).
package profile

import (
	"math"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
)

// NegInf is the floor used for impossible transitions in float scores.
var NegInf = math.Inf(-1)

// Profile is the configured full-precision search profile. All scores
// are natural-log odds (nats).
type Profile struct {
	Name string
	M    int
	Abc  *alphabet.Alphabet

	// MSC[r][k] is the match emission log-odds for digital residue r at
	// node k (k = 1..M; index 0 unused). Degenerate residues are
	// marginalised; gap-like codes score NegInf.
	MSC [][]float64

	// Transition scores out of node k (k = 0..M; entries that do not
	// exist in the model are NegInf). TMM[k] is M_k -> M_{k+1}, etc.
	TMM, TMI, TMD, TIM, TII, TDM, TDD []float64

	// TBM is the uniform local entry score ln(2/(M(M+1))) for B -> M_k.
	TBM float64
	// TEC and TEJ are the E->C / E->J scores; ln(0.5) in multihit mode.
	TEC, TEJ float64

	// Length-model scores, set by SetLength: TLoop = ln(L/(L+3)) for
	// the N->N, C->C, J->J self loops; TMove = ln(3/(L+3)) for
	// N->B, J->B and C->T.
	TLoop, TMove float64
	// L is the configured target length.
	L int

	// Stats carries the calibration parameters from the source model.
	Stats hmm.CalibrationStats
}

// Config builds a multihit-local search profile from a validated core
// model. The profile still needs SetLength before scoring.
func Config(h *hmm.Plan7) *Profile {
	abc := h.Abc
	p := &Profile{
		Name:  h.Name,
		M:     h.M,
		Abc:   abc,
		Stats: h.Stats,
	}
	m := h.M
	bg := abc.Backgrounds()

	// Match emission log-odds, canonical then marginalised degenerates.
	p.MSC = make([][]float64, abc.SizeAll())
	canonical := make([][]float64, m+1)
	for k := 1; k <= m; k++ {
		canonical[k] = make([]float64, abc.Size())
		for r := 0; r < abc.Size(); r++ {
			if h.Mat[k][r] <= 0 {
				canonical[k][r] = NegInf
			} else {
				canonical[k][r] = math.Log(h.Mat[k][r] / bg[r])
			}
		}
	}
	scratch := make([]float64, abc.Size())
	for r := 0; r < abc.SizeAll(); r++ {
		p.MSC[r] = make([]float64, m+1)
		p.MSC[r][0] = NegInf
		for k := 1; k <= m; k++ {
			switch {
			case r < abc.Size():
				p.MSC[r][k] = canonical[k][r]
			case abc.IsDegenerate(byte(r)):
				copy(scratch, canonical[k])
				p.MSC[r][k] = abc.DegenerateScore(byte(r), scratch)
			default:
				p.MSC[r][k] = NegInf
			}
		}
	}

	// Transition scores.
	ln := func(x float64) float64 {
		if x <= 0 {
			return NegInf
		}
		return math.Log(x)
	}
	alloc := func() []float64 {
		s := make([]float64, m+1)
		for i := range s {
			s[i] = NegInf
		}
		return s
	}
	p.TMM, p.TMI, p.TMD = alloc(), alloc(), alloc()
	p.TIM, p.TII = alloc(), alloc()
	p.TDM, p.TDD = alloc(), alloc()
	for k := 1; k < m; k++ {
		p.TMM[k] = ln(h.T[k][hmm.TMM])
		p.TMI[k] = ln(h.T[k][hmm.TMI])
		p.TMD[k] = ln(h.T[k][hmm.TMD])
		p.TIM[k] = ln(h.T[k][hmm.TIM])
		p.TII[k] = ln(h.T[k][hmm.TII])
		p.TDM[k] = ln(h.T[k][hmm.TDM])
		p.TDD[k] = ln(h.T[k][hmm.TDD])
	}

	p.TBM = math.Log(2.0 / (float64(m) * float64(m+1)))
	p.TEC = math.Log(0.5)
	p.TEJ = math.Log(0.5)
	return p
}

// SetLength configures the length model for a target of L residues.
func (p *Profile) SetLength(L int) {
	p.L = L
	fl := float64(L)
	p.TLoop = math.Log(fl / (fl + 3))
	p.TMove = math.Log(3 / (fl + 3))
}

// MatchScore returns the match emission log-odds for residue code r at
// node k, tolerating out-of-range codes (returns NegInf).
func (p *Profile) MatchScore(r byte, k int) float64 {
	if int(r) >= len(p.MSC) || k < 1 || k > p.M {
		return NegInf
	}
	return p.MSC[r][k]
}
