package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/satmath"
)

var abc = alphabet.New()

func testProfile(t testing.TB, m int, seed int64) *Profile {
	t.Helper()
	h, err := hmm.Random("p", m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return Config(h)
}

func TestConfigScoresConsistent(t *testing.T) {
	p := testProfile(t, 30, 1)
	// Expected-value identity: sum over residues of bg[r]*exp(msc) = 1
	// for every node, because msc = ln(mat/bg) and mat sums to 1.
	for k := 1; k <= p.M; k++ {
		var sum float64
		for r := 0; r < abc.Size(); r++ {
			sum += abc.Background(byte(r)) * math.Exp(p.MSC[r][k])
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("node %d: sum bg*odds = %g, want 1", k, sum)
		}
	}
}

func TestConfigDegenerateScoresBounded(t *testing.T) {
	p := testProfile(t, 20, 2)
	// A degenerate residue's score must lie within [min,max] of its
	// expansion's scores.
	bCode, _ := abc.Code('B')
	dCode, _ := abc.Code('D')
	nCode, _ := abc.Code('N')
	for k := 1; k <= p.M; k++ {
		lo := math.Min(p.MSC[dCode][k], p.MSC[nCode][k])
		hi := math.Max(p.MSC[dCode][k], p.MSC[nCode][k])
		got := p.MSC[bCode][k]
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Errorf("node %d: MSC[B]=%g outside [%g,%g]", k, got, lo, hi)
		}
	}
}

func TestGapCodesScoreNegInf(t *testing.T) {
	p := testProfile(t, 10, 3)
	for _, c := range []byte{alphabet.CodeGap, alphabet.CodeEnd, alphabet.CodeMissing} {
		if !math.IsInf(p.MSC[c][5], -1) {
			t.Errorf("code %d scores %g, want -inf", c, p.MSC[c][5])
		}
	}
	if !math.IsInf(p.MatchScore(200, 5), -1) {
		t.Error("out-of-range residue should score -inf")
	}
	if !math.IsInf(p.MatchScore(0, 0), -1) || !math.IsInf(p.MatchScore(0, p.M+1), -1) {
		t.Error("out-of-range node should score -inf")
	}
}

func TestSetLength(t *testing.T) {
	p := testProfile(t, 10, 4)
	p.SetLength(100)
	if math.Abs(p.TLoop-math.Log(100.0/103)) > 1e-12 {
		t.Errorf("TLoop = %g", p.TLoop)
	}
	if math.Abs(p.TMove-math.Log(3.0/103)) > 1e-12 {
		t.Errorf("TMove = %g", p.TMove)
	}
	if math.Exp(p.TLoop)+math.Exp(p.TMove) > 1+1e-12 {
		t.Error("length model probabilities exceed 1")
	}
}

func TestEntryExitScores(t *testing.T) {
	p := testProfile(t, 40, 5)
	wantTBM := math.Log(2.0 / (40.0 * 41.0))
	if math.Abs(p.TBM-wantTBM) > 1e-12 {
		t.Errorf("TBM = %g, want %g", p.TBM, wantTBM)
	}
	if p.TEC != math.Log(0.5) || p.TEJ != math.Log(0.5) {
		t.Errorf("multihit E transitions wrong: TEC=%g TEJ=%g", p.TEC, p.TEJ)
	}
}

func TestTransitionBoundaries(t *testing.T) {
	p := testProfile(t, 15, 6)
	// No transitions out of node 0 (entry is via TBM) or node M.
	for _, arr := range [][]float64{p.TMM, p.TMI, p.TMD, p.TIM, p.TII, p.TDM, p.TDD} {
		if !math.IsInf(arr[0], -1) || !math.IsInf(arr[p.M], -1) {
			t.Fatal("boundary transitions should be -inf")
		}
	}
	for k := 1; k < p.M; k++ {
		if p.TMM[k] >= 0 || math.IsInf(p.TMM[k], -1) {
			t.Errorf("TMM[%d] = %g not a finite negative log prob", k, p.TMM[k])
		}
	}
}

func TestMSVProfileQuantisation(t *testing.T) {
	p := testProfile(t, 25, 7)
	p.SetLength(150)
	mp := NewMSVProfile(p)
	if mp.L != 150 {
		t.Errorf("L = %d", mp.L)
	}
	// Bias must cover the best emission: best costs are >= 0 by
	// construction and the best emission has cost bias - maxUnit = 0.
	sawZero := false
	for r := 0; r < abc.Size(); r++ {
		for k := 1; k <= p.M; k++ {
			c := mp.MatCost[r][k]
			wantUnits := int(math.Round(p.MSC[r][k] * MSVScale))
			want := int(mp.Bias) - wantUnits
			if want < 0 {
				t.Fatalf("bias %d too small for unit %d", mp.Bias, wantUnits)
			}
			if want > 255 {
				want = 255
			}
			if int(c) != want {
				t.Errorf("cost[%d][%d] = %d, want %d", r, k, c, want)
			}
			if c == 0 {
				sawZero = true
			}
		}
	}
	if !sawZero {
		t.Error("no zero-cost (best) emission found; bias is miscalibrated")
	}
	// Gap codes and sentinel positions carry max cost.
	if mp.Cost(alphabet.CodeGap, 3) != 255 || mp.Cost(alphabet.PackSentinel, 3) != 255 {
		t.Error("gap/sentinel cost should be 255")
	}
	if mp.Cost(0, 0) != 255 || mp.Cost(0, p.M+1) != 255 {
		t.Error("out-of-range node cost should be 255")
	}
}

func TestMSVScoreToNatsInvertsQuantisation(t *testing.T) {
	p := testProfile(t, 10, 8)
	p.SetLength(350)
	mp := NewMSVProfile(p)
	// xJ = base corresponds to a raw unit score of 0.
	got := mp.ScoreToNats(MSVBase)
	want := p.TMove - 3.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ScoreToNats(base) = %g, want %g", got, want)
	}
}

func TestMSVStripedLayout(t *testing.T) {
	p := testProfile(t, 21, 9)
	p.SetLength(100)
	mp := NewMSVProfile(p)
	const w = 16
	q := StripedSegments(mp.M, w)
	if q != 2 {
		t.Fatalf("Q = %d, want 2 for M=21, width=16", q)
	}
	striped := mp.Striped(w)
	for r := range striped {
		if len(striped[r]) != q*w {
			t.Fatalf("striped row len %d", len(striped[r]))
		}
		for qi := 0; qi < q; qi++ {
			for l := 0; l < w; l++ {
				k := qi + l*q + 1
				got := striped[r][qi*w+l]
				want := uint8(255)
				if k <= mp.M {
					want = mp.MatCost[r][k]
				}
				if got != want {
					t.Fatalf("striped[%d][q=%d,l=%d] = %d, want %d (k=%d)", r, qi, l, got, want, k)
				}
			}
		}
	}
}

func TestStripedSegments(t *testing.T) {
	cases := []struct{ m, w, want int }{
		{1, 16, 1}, {16, 16, 1}, {17, 16, 2}, {400, 16, 25}, {5, 32, 1},
	}
	for _, c := range cases {
		if got := StripedSegments(c.m, c.w); got != c.want {
			t.Errorf("StripedSegments(%d,%d) = %d, want %d", c.m, c.w, got, c.want)
		}
	}
}

func TestVitProfileQuantisation(t *testing.T) {
	p := testProfile(t, 30, 10)
	p.SetLength(200)
	vp := NewVitProfile(p)
	for r := 0; r < abc.Size(); r++ {
		for k := 1; k <= p.M; k++ {
			want := int16(math.Round(p.MSC[r][k] * VitScale))
			if vp.MatUnit[r][k] != want {
				t.Errorf("MatUnit[%d][%d] = %d, want %d", r, k, vp.MatUnit[r][k], want)
			}
		}
	}
	// -inf transitions map to NegInf16.
	if vp.TMM[0] != satmath.NegInf16 || vp.TDD[p.M] != satmath.NegInf16 {
		t.Error("boundary transitions should quantise to NegInf16")
	}
	if vp.MatchUnit(alphabet.CodeGap, 4) != satmath.NegInf16 {
		t.Error("gap residue should score NegInf16")
	}
	if vp.MatchUnit(0, 0) != satmath.NegInf16 || vp.MatchUnit(0, p.M+1) != satmath.NegInf16 {
		t.Error("out-of-range node should score NegInf16")
	}
}

func TestVitProfileSetLengthRescales(t *testing.T) {
	p := testProfile(t, 10, 11)
	p.SetLength(100)
	vp := NewVitProfile(p)
	m100 := vp.TMove
	vp.SetLength(10000)
	if vp.TMove >= m100 {
		t.Errorf("TMove should get more negative with longer targets: %d -> %d", m100, vp.TMove)
	}
}

func TestOverflowed(t *testing.T) {
	if Overflowed(32766) || !Overflowed(32767) {
		t.Error("Overflowed threshold wrong")
	}
}

func TestPackTerminatedAlwaysHasSentinel(t *testing.T) {
	f := func(raw []byte) bool {
		dsq := make([]byte, len(raw))
		for i, b := range raw {
			dsq[i] = b % 20
		}
		words := PackTerminated(dsq)
		// The residue right after the last real one must be the sentinel.
		if alphabet.PackedAt(words, len(dsq)) != alphabet.PackSentinel {
			return false
		}
		// And the packed data must still round-trip.
		got := alphabet.Unpack(words, len(dsq))
		return string(got) == string(dsq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantisationErrorBounded(t *testing.T) {
	// Quantised emission scores must stay within half a unit of the
	// float score (where not saturated).
	p := testProfile(t, 40, 12)
	p.SetLength(300)
	mp := NewMSVProfile(p)
	vp := NewVitProfile(p)
	for r := 0; r < abc.Size(); r++ {
		for k := 1; k <= p.M; k++ {
			sc := p.MSC[r][k]
			mGot := (float64(mp.Bias) - float64(mp.MatCost[r][k])) / MSVScale
			if mp.MatCost[r][k] != 255 && math.Abs(mGot-sc) > 0.5/MSVScale+1e-9 {
				t.Errorf("MSV quantisation error at [%d][%d]: %g vs %g", r, k, mGot, sc)
			}
			vGot := float64(vp.MatUnit[r][k]) / VitScale
			if math.Abs(vGot-sc) > 0.5/VitScale+1e-9 {
				t.Errorf("Vit quantisation error at [%d][%d]: %g vs %g", r, k, vGot, sc)
			}
		}
	}
}
