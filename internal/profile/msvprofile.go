package profile

import (
	"math"

	"hmmer3gpu/internal/alphabet"
)

// MSV filter quantisation. Scores are held in unsigned bytes at
// MSVScale units per nat (1/3-bit resolution, as in HMMER3), offset by
// MSVBase, with emission scores stored as biased costs so that the
// inner loop is max / saturating-add(bias) / saturating-sub(cost) —
// exactly the shape of the paper's Algorithm 1, line 15:
//
//	temp = max(mmx, xB) + bias - em(res, p)
const (
	// MSVScale is the number of byte units per nat: 3 units per bit.
	MSVScale = 3.0 / math.Ln2
	// MSVBase is the byte offset representing score 0 for the special
	// states (HMMER3 uses the same value).
	MSVBase = 190
	// msvNatCorrection restores the N/C/J self-loop contribution the
	// filter treats as free; lim_{L->inf} L*ln(L/(L+3)) = -3 nats.
	msvNatCorrection = 3.0
)

// MSVProfile is the 8-bit quantised profile for the MSV filter.
type MSVProfile struct {
	Name string
	M    int

	// MatCost[r][k] is the biased emission cost byte for residue code r
	// at node k: Bias - round(MSVScale * msc), saturated to [0,255].
	// Row index covers all digital codes; gap-like codes carry the
	// maximal cost.
	MatCost [][]uint8

	// Bias is the emission bias: the maximum quantised emission score,
	// so that biased costs are always non-negative.
	Bias uint8
	// TBM is the byte cost of the uniform local entry B->M_k.
	TBM uint8
	// TEC is the byte cost of E->J / E->C (ln 2 in multihit mode).
	TEC uint8
	// TJB is the byte cost of the N->B / J->B move; depends on target
	// length, set by SetLength.
	TJB uint8
	// L is the configured target length.
	L int
	// TMoveNats keeps the exact move score for the final conversion.
	TMoveNats float64
}

// NewMSVProfile quantises a configured search profile for the 8-bit
// MSV filter.
func NewMSVProfile(p *Profile) *MSVProfile {
	mp := &MSVProfile{Name: p.Name, M: p.M}

	// First pass: find the maximum emission unit to set the bias.
	maxUnit := 0
	for r := 0; r < p.Abc.Size(); r++ {
		for k := 1; k <= p.M; k++ {
			if u := msvUnits(p.MSC[r][k]); u > maxUnit {
				maxUnit = u
			}
		}
	}
	if maxUnit > 255 {
		maxUnit = 255
	}
	mp.Bias = uint8(maxUnit)

	mp.MatCost = make([][]uint8, p.Abc.SizeAll())
	for r := range mp.MatCost {
		row := make([]uint8, p.M+1)
		row[0] = 255
		for k := 1; k <= p.M; k++ {
			row[k] = biasedCost(mp.Bias, p.MSC[r][k])
		}
		mp.MatCost[r] = row
	}

	mp.TBM = costUnits(p.TBM)
	mp.TEC = costUnits(p.TEC)
	if p.L > 0 {
		mp.SetLength(p.L)
	}
	return mp
}

// SetLength configures the length-dependent move cost.
func (mp *MSVProfile) SetLength(L int) {
	mp.L = L
	fl := float64(L)
	mp.TMoveNats = math.Log(3 / (fl + 3))
	mp.TJB = costUnits(mp.TMoveNats)
}

// ScoreToNats converts a final filter xJ byte back to a natural-log
// score, including the move cost and the loop correction.
func (mp *MSVProfile) ScoreToNats(xJ uint8) float64 {
	return (float64(xJ)-MSVBase)/MSVScale + mp.TMoveNats - msvNatCorrection
}

// OverflowThreshold is the xE value at or above which the row maximum
// may have saturated, in which case the filter must report +inf (the
// sequence unconditionally passes to the next stage).
func (mp *MSVProfile) OverflowThreshold() uint8 {
	return 255 - mp.Bias
}

// Cost returns the biased emission cost for residue r at node k,
// tolerating the packing sentinel and out-of-range codes (max cost).
func (mp *MSVProfile) Cost(r byte, k int) uint8 {
	if int(r) >= len(mp.MatCost) || k < 1 || k > mp.M {
		return 255
	}
	return mp.MatCost[r][k]
}

// msvUnits quantises a nat score to signed byte units.
func msvUnits(sc float64) int {
	if math.IsInf(sc, -1) {
		return math.MinInt32 / 2
	}
	return int(math.Round(sc * MSVScale))
}

// biasedCost converts a nat emission score to the biased cost byte.
func biasedCost(bias uint8, sc float64) uint8 {
	u := msvUnits(sc)
	c := int(bias) - u
	if c < 0 {
		c = 0
	}
	if c > 255 {
		c = 255
	}
	return uint8(c)
}

// costUnits converts a non-positive nat score to a non-negative byte
// cost (rounded).
func costUnits(sc float64) uint8 {
	c := int(math.Round(-sc * MSVScale))
	if c < 0 {
		c = 0
	}
	if c > 255 {
		c = 255
	}
	return uint8(c)
}

// Striped returns the emission cost rows rearranged in Farrar striping
// for a vector engine with width lanes: Q = ceil(M/width) vectors per
// residue, where vector q lane l holds node q + l*Q + 1 (or max cost
// for padding). The returned layout is [residue][q*width + lane].
func (mp *MSVProfile) Striped(width int) [][]uint8 {
	q := StripedSegments(mp.M, width)
	out := make([][]uint8, len(mp.MatCost))
	for r := range mp.MatCost {
		row := make([]uint8, q*width)
		for qi := 0; qi < q; qi++ {
			for l := 0; l < width; l++ {
				k := qi + l*q + 1
				if k <= mp.M {
					row[qi*width+l] = mp.MatCost[r][k]
				} else {
					row[qi*width+l] = 255
				}
			}
		}
		out[r] = row
	}
	return out
}

// StripedSegments returns Q, the number of width-lane vectors per DP
// row in the striped layout.
func StripedSegments(m, width int) int {
	q := (m + width - 1) / width
	if q < 1 {
		q = 1
	}
	return q
}

// PackTerminated packs a digital sequence and guarantees at least one
// trailing PackSentinel slot, which the warp kernels use as their
// loop-termination flag (paper Figure 6).
func PackTerminated(dsq []byte) []uint32 {
	words := alphabet.Pack(dsq)
	if len(dsq)%alphabet.ResiduesPerWord == 0 {
		sentinelWord := uint32(0)
		for s := 0; s < alphabet.ResiduesPerWord; s++ {
			sentinelWord |= uint32(alphabet.PackSentinel) << (5 * s)
		}
		words = append(words, sentinelWord)
	}
	return words
}
