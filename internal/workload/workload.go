// Package workload generates the synthetic stand-ins for the paper's
// evaluation inputs: Swissprot-like and Env_nr-like sequence databases
// (matched in count/length statistics, scaled to laptop size) and
// Pfam-like query models across the paper's size sweep. Homologous
// sequences are planted by sampling the query model, so the stage
// pass-rates — the quantity the pipeline time split depends on — are
// controllable and realistic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/seq"
)

// PaperModelSizes is the model-size sweep of Figures 9-11.
var PaperModelSizes = []int{48, 100, 200, 400, 800, 1002, 1528, 2405}

// DBSpec describes a synthetic database.
type DBSpec struct {
	Name string
	// NumSeqs is the sequence count.
	NumSeqs int
	// MeanLen is the mean sequence length; lengths follow a lognormal
	// distribution with shape LogSigma, clamped to [MinLen, MaxLen].
	MeanLen  int
	LogSigma float64
	MinLen   int
	MaxLen   int
	// HomologFrac is the fraction of sequences planted as homologs of
	// the query model (sampled from it, with random flanks).
	HomologFrac float64
	// Seed fixes the generator.
	Seed int64
}

// Reference full-size statistics from the paper (§IV):
// Swissprot: 459,565 sequences, 171,731,281 residues (mean ~374);
// Env_nr: 6,549,721 sequences, 1,290,247,663 residues (mean ~197).
const (
	swissprotSeqs    = 459565
	swissprotMeanLen = 374
	envnrSeqs        = 6549721
	envnrMeanLen     = 197
)

// SwissprotLike returns a Swissprot-shaped spec scaled down by the
// given factor (scale=1 reproduces the full database size; benchmarks
// use small scales and the performance model extrapolates linearly).
// Swissprot is curated protein space, so a query family typically has
// genuine members in it — the planted homolog fraction is high, which
// lowers the MSV:Viterbi time ratio (the paper's §V explanation of why
// Swissprot speeds up less than Env_nr).
func SwissprotLike(scale float64, seed int64) DBSpec {
	return DBSpec{
		Name:        "swissprot-like",
		NumSeqs:     scaled(swissprotSeqs, scale),
		MeanLen:     swissprotMeanLen,
		LogSigma:    0.65,
		MinLen:      25,
		MaxLen:      5000,
		HomologFrac: 0.02,
		Seed:        seed,
	}
}

// EnvnrLike returns an Env_nr-shaped spec: many short environmental
// fragments with little homology to any given query.
func EnvnrLike(scale float64, seed int64) DBSpec {
	return DBSpec{
		Name:        "envnr-like",
		NumSeqs:     scaled(envnrSeqs, scale),
		MeanLen:     envnrMeanLen,
		LogSigma:    0.45,
		MinLen:      20,
		MaxLen:      2000,
		HomologFrac: 0.002,
		Seed:        seed,
	}
}

func scaled(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Generate builds the database. model may be nil when HomologFrac is
// zero; otherwise planted sequences are sampled from it.
func Generate(spec DBSpec, model *hmm.Plan7, abc *alphabet.Alphabet) (*seq.Database, error) {
	if spec.NumSeqs < 1 {
		return nil, fmt.Errorf("workload: %s: no sequences requested", spec.Name)
	}
	if spec.HomologFrac > 0 && model == nil {
		return nil, fmt.Errorf("workload: %s: homologs requested but no model given", spec.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	db := seq.NewDatabase(spec.Name)
	bg := abc.Backgrounds()

	// Lognormal length parameters: mean = exp(mu + sigma^2/2).
	sigma := spec.LogSigma
	mu := math.Log(float64(spec.MeanLen)) - sigma*sigma/2

	drawLen := func() int {
		l := int(math.Exp(mu + sigma*rng.NormFloat64()))
		if l < spec.MinLen {
			l = spec.MinLen
		}
		if l > spec.MaxLen {
			l = spec.MaxLen
		}
		return l
	}
	randomResidues := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			u, acc := rng.Float64(), 0.0
			out[i] = byte(len(bg) - 1)
			for r, f := range bg {
				acc += f
				if u < acc {
					out[i] = byte(r)
					break
				}
			}
		}
		return out
	}

	nHomologs := int(math.Round(spec.HomologFrac * float64(spec.NumSeqs)))
	for i := 0; i < spec.NumSeqs; i++ {
		var res []byte
		if i < nHomologs {
			// A homolog: model sample embedded in random flanks, so the
			// hit is local within a longer target.
			core := model.SampleSequence(rng)
			flank := drawLen() / 4
			res = append(randomResidues(rng.Intn(flank+1)), core...)
			res = append(res, randomResidues(rng.Intn(flank+1))...)
		} else {
			res = randomResidues(drawLen())
		}
		db.Add(&seq.Sequence{
			Name:     fmt.Sprintf("%s_%06d", spec.Name, i),
			Residues: res,
		})
	}
	// Shuffle so homologs are spread across device shards.
	rng.Shuffle(len(db.Seqs), func(a, b int) {
		db.Seqs[a], db.Seqs[b] = db.Seqs[b], db.Seqs[a]
	})
	return db, nil
}

// Model builds a Pfam-like random query model of the given size.
func Model(name string, m int, abc *alphabet.Alphabet, seed int64) (*hmm.Plan7, error) {
	return hmm.Random(name, m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(seed)))
}

// PfamBucket is one row of the paper's Pfam 27.0 model-size breakdown.
type PfamBucket struct {
	Label    string
	Fraction float64
}

// PfamSizeDistribution returns the paper's §IV statistics for the
// 34,831 families of Pfam 27.0 (pfamA + pfamB): 84.5% of models have
// size <= 400, 14.4% fall in 400..1000, and 1.1% are >= 1000 — the
// basis of the claim that the shared-memory configuration serves ~99%
// of real use cases.
func PfamSizeDistribution() (total int, buckets []PfamBucket) {
	return 34831, []PfamBucket{
		{Label: "size <= 400", Fraction: 0.845},
		{Label: "400 < size <= 1000", Fraction: 0.144},
		{Label: "size > 1000", Fraction: 0.011},
	}
}

// Mutate returns a copy of dsq with each residue independently
// replaced by a background draw with probability rate — the knob for
// sensitivity experiments (recall of increasingly diverged homologs).
func Mutate(dsq []byte, rate float64, abc *alphabet.Alphabet, rng *rand.Rand) []byte {
	out := make([]byte, len(dsq))
	bg := abc.Backgrounds()
	for i, r := range dsq {
		if rng.Float64() < rate {
			u, acc := rng.Float64(), 0.0
			out[i] = byte(len(bg) - 1)
			for c, f := range bg {
				acc += f
				if u < acc {
					out[i] = byte(c)
					break
				}
			}
		} else {
			out[i] = r
		}
	}
	return out
}
