package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"hmmer3gpu/internal/alphabet"
)

var abc = alphabet.New()

func TestSwissprotLikeStatistics(t *testing.T) {
	spec := SwissprotLike(0.01, 1)
	if spec.NumSeqs != 4595 {
		t.Errorf("scaled seq count = %d", spec.NumSeqs)
	}
	model, err := Model("q", 100, abc, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Generate(spec, model, abc)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSeqs() != spec.NumSeqs {
		t.Fatalf("generated %d sequences", db.NumSeqs())
	}
	mean := db.MeanLen()
	if mean < 300 || mean > 460 {
		t.Errorf("mean length %.1f, want ~374", mean)
	}
	// Length distribution should be skewed: median < mean.
	if med := db.LengthQuantile(0.5); float64(med) >= mean {
		t.Errorf("median %d >= mean %.1f; expected right skew", med, mean)
	}
}

func TestEnvnrLikeShorter(t *testing.T) {
	model, err := Model("q", 100, abc, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Generate(SwissprotLike(0.002, 4), model, abc)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Generate(EnvnrLike(0.0002, 5), model, abc)
	if err != nil {
		t.Fatal(err)
	}
	if env.MeanLen() >= sp.MeanLen() {
		t.Errorf("envnr mean %.1f should be below swissprot mean %.1f", env.MeanLen(), sp.MeanLen())
	}
	// Envnr is the larger database per unit scale.
	full := float64(6549721) * 0.0002
	if math.Abs(float64(env.NumSeqs())-full) > 1 {
		t.Errorf("envnr scaled count %d, want ~%g", env.NumSeqs(), full)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(DBSpec{Name: "x", NumSeqs: 0}, nil, abc); err == nil {
		t.Error("zero sequences accepted")
	}
	spec := DBSpec{Name: "x", NumSeqs: 10, MeanLen: 100, LogSigma: 0.5, MinLen: 10, MaxLen: 500, HomologFrac: 0.5}
	if _, err := Generate(spec, nil, abc); err == nil {
		t.Error("homologs without model accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	model, err := Model("q", 60, abc, 6)
	if err != nil {
		t.Fatal(err)
	}
	spec := SwissprotLike(0.001, 7)
	a, err := Generate(spec, model, abc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, model, abc)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSeqs() != b.NumSeqs() || a.TotalResidues() != b.TotalResidues() {
		t.Error("same spec should regenerate the same database")
	}
	for i := range a.Seqs {
		if a.Seqs[i].Name != b.Seqs[i].Name || a.Seqs[i].Len() != b.Seqs[i].Len() {
			t.Fatalf("sequence %d differs between runs", i)
		}
	}
}

func TestGenerateAllResiduesCanonical(t *testing.T) {
	model, err := Model("q", 40, abc, 8)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Generate(EnvnrLike(0.00005, 9), model, abc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Seqs {
		if err := s.Validate(abc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPfamSizeDistribution(t *testing.T) {
	total, buckets := PfamSizeDistribution()
	if total != 34831 {
		t.Errorf("total = %d", total)
	}
	var sum float64
	for _, b := range buckets {
		sum += b.Fraction
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
}

func TestPaperModelSizes(t *testing.T) {
	want := []int{48, 100, 200, 400, 800, 1002, 1528, 2405}
	if len(PaperModelSizes) != len(want) {
		t.Fatal("size sweep changed")
	}
	for i := range want {
		if PaperModelSizes[i] != want[i] {
			t.Errorf("sweep[%d] = %d", i, PaperModelSizes[i])
		}
	}
}

func TestMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	orig := make([]byte, 2000)
	for i := range orig {
		orig[i] = byte(rng.Intn(20))
	}
	// Rate 0: identical. Rate 1: nearly everything redrawn.
	if got := Mutate(orig, 0, abc, rng); !bytes.Equal(got, orig) {
		t.Error("rate 0 changed the sequence")
	}
	full := Mutate(orig, 1, abc, rng)
	same := 0
	for i := range orig {
		if full[i] == orig[i] {
			same++
		}
	}
	// Background redraws collide with the original ~7% of the time.
	if frac := float64(same) / float64(len(orig)); frac > 0.2 {
		t.Errorf("rate 1 kept %.2f of residues", frac)
	}
	// Intermediate rate: roughly that fraction differs.
	half := Mutate(orig, 0.5, abc, rng)
	diff := 0
	for i := range orig {
		if half[i] != orig[i] {
			diff++
		}
	}
	frac := float64(diff) / float64(len(orig))
	if frac < 0.35 || frac > 0.6 {
		t.Errorf("rate 0.5 changed %.2f of residues", frac)
	}
	// Input untouched, output canonical.
	for _, r := range full {
		if r >= 20 {
			t.Fatal("non-canonical residue after mutation")
		}
	}
}
