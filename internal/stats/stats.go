// Package stats implements the score statistics of HMMER 3.0: Gumbel
// (type I extreme value) distributions for the optimal-alignment MSV
// and Viterbi scores, and the exponential high-scoring tail of the
// Forward total-log-likelihood scores — both with slope parameter
// lambda = log 2 when scores are expressed in bits, the conjecture the
// pipeline's filter design rests on (§I of the paper: the high-scoring
// tails of Viterbi and Forward scores agree, which is what allows
// Viterbi-style filters to pre-screen for the Forward stage).
//
// All distributions here operate on BIT scores (nats / ln 2), matching
// the convention of HMMER3 save-file STATS lines.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Lambda is the canonical slope parameter for bit scores.
var Lambda = math.Ln2

// Gumbel is a type I extreme value distribution.
type Gumbel struct {
	Mu     float64
	Lambda float64
}

// Surv returns P(S > x), the P-value of score x.
func (g Gumbel) Surv(x float64) float64 {
	y := g.Lambda * (x - g.Mu)
	// 1 - exp(-exp(-y)), guarded for numerical stability.
	ey := math.Exp(-y)
	if ey < 1e-8 {
		return ey // 1-exp(-t) ~ t for small t
	}
	return 1 - math.Exp(-ey)
}

// CDF returns P(S <= x).
func (g Gumbel) CDF(x float64) float64 {
	return math.Exp(-math.Exp(-g.Lambda * (x - g.Mu)))
}

// Sample draws one variate.
func (g Gumbel) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return g.Mu - math.Log(-math.Log(u))/g.Lambda
}

// ScoreForP inverts Surv: the score with P-value p.
func (g Gumbel) ScoreForP(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	return g.Mu - math.Log(-math.Log(1-p))/g.Lambda
}

// FitGumbelFixedLambda estimates mu by maximum likelihood with lambda
// known (HMMER's calibration procedure: lambda is fixed at log 2 and
// only the location is fitted).
func FitGumbelFixedLambda(samples []float64, lambda float64) (Gumbel, error) {
	if len(samples) == 0 {
		return Gumbel{}, fmt.Errorf("stats: no samples to fit")
	}
	// ML with known lambda: mu = -(1/lambda) * ln( mean(exp(-lambda x)) ).
	// Shift by the max for numerical stability.
	maxS := samples[0]
	for _, s := range samples {
		if s > maxS {
			maxS = s
		}
	}
	var acc float64
	for _, s := range samples {
		acc += math.Exp(-lambda * (s - maxS))
	}
	acc /= float64(len(samples))
	mu := maxS - math.Log(acc)/lambda
	return Gumbel{Mu: mu, Lambda: lambda}, nil
}

// Exponential models the high-scoring tail of Forward scores:
// P(S > x) = exp(-lambda (x - tau)) for x >= tau, 1 otherwise.
type Exponential struct {
	Tau    float64
	Lambda float64
}

// Surv returns P(S > x).
func (e Exponential) Surv(x float64) float64 {
	if x <= e.Tau {
		return 1
	}
	return math.Exp(-e.Lambda * (x - e.Tau))
}

// ScoreForP inverts Surv for p in (0, 1].
func (e Exponential) ScoreForP(p float64) float64 {
	if p <= 0 || p > 1 {
		return math.NaN()
	}
	return e.Tau - math.Log(p)/e.Lambda
}

// FitExpTailFixedLambda anchors the exponential at the (1-tailMass)
// quantile of the samples: tau is set so that Surv matches tailMass at
// that point, mirroring HMMER's Forward-tau calibration.
func FitExpTailFixedLambda(samples []float64, lambda, tailMass float64) (Exponential, error) {
	if len(samples) == 0 {
		return Exponential{}, fmt.Errorf("stats: no samples to fit")
	}
	if tailMass <= 0 || tailMass >= 1 {
		return Exponential{}, fmt.Errorf("stats: tail mass %g out of (0,1)", tailMass)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(float64(len(sorted))*(1-tailMass))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	q := sorted[idx] // approx (1-tailMass)-quantile
	// Surv(q) = tailMass  =>  tau = q + ln(tailMass)/lambda.
	return Exponential{Tau: q + math.Log(tailMass)/lambda, Lambda: lambda}, nil
}

// BitsFromNats converts a natural-log score to bits.
func BitsFromNats(nats float64) float64 { return nats / math.Ln2 }

// EValue converts a P-value to an E-value over n independent trials
// (database sequences).
func EValue(pvalue float64, n int) float64 { return pvalue * float64(n) }

// EmpiricalFDR estimates the false-discovery rate at each target hit
// using the target-decoy strategy: hits on shuffled decoys estimate
// the false-positive count. Both slices hold E-values (any monotone
// score works); the result, aligned with sorted targetEValues, is
// FDR(i) = (#decoys <= e_i) / (i+1), made monotone non-decreasing.
func EmpiricalFDR(targetEValues, decoyEValues []float64) []float64 {
	targets := append([]float64(nil), targetEValues...)
	decoys := append([]float64(nil), decoyEValues...)
	sort.Float64s(targets)
	sort.Float64s(decoys)
	out := make([]float64, len(targets))
	d := 0
	for i, e := range targets {
		for d < len(decoys) && decoys[d] <= e {
			d++
		}
		out[i] = float64(d) / float64(i+1)
		if out[i] > 1 {
			out[i] = 1
		}
	}
	// Enforce monotonicity from the bottom (step-up).
	for i := len(out) - 2; i >= 0; i-- {
		if out[i] > out[i+1] {
			out[i] = out[i+1]
		}
	}
	return out
}
