package stats

import (
	"math/rand"
)

// Calibration by simulation, as in hmmsim/p7_Calibrate: score a set of
// i.i.d. random sequences with a filter, then fit the appropriate
// distribution with lambda fixed at log 2.

// CalibrateOptions controls the random-sequence simulation.
type CalibrateOptions struct {
	// N is the number of random sequences (HMMER uses 200).
	N int
	// L is their length (HMMER uses 100).
	L int
	// Seed makes calibration reproducible.
	Seed int64
	// TailMass anchors the Forward exponential fit (HMMER uses 0.04).
	TailMass float64
}

// DefaultCalibration returns HMMER3's calibration parameters.
func DefaultCalibration() CalibrateOptions {
	return CalibrateOptions{N: 200, L: 100, Seed: 42, TailMass: 0.04}
}

// Scorer scores one digital sequence, returning a bit score.
type Scorer func(dsq []byte) float64

// sampleSeqs draws N background sequences of length L over the
// canonical residues with the given frequencies.
func sampleSeqs(opts CalibrateOptions, bg []float64, fn func(dsq []byte)) {
	rng := rand.New(rand.NewSource(opts.Seed))
	dsq := make([]byte, opts.L)
	for i := 0; i < opts.N; i++ {
		for j := range dsq {
			u, acc := rng.Float64(), 0.0
			dsq[j] = byte(len(bg) - 1)
			for r, f := range bg {
				acc += f
				if u < acc {
					dsq[j] = byte(r)
					break
				}
			}
		}
		fn(dsq)
	}
}

// CalibrateGumbel simulates random sequences, scores them, and fits a
// Gumbel with lambda = log 2 — used for the MSV and Viterbi filters.
func CalibrateGumbel(score Scorer, bg []float64, opts CalibrateOptions) (Gumbel, error) {
	samples := make([]float64, 0, opts.N)
	sampleSeqs(opts, bg, func(dsq []byte) {
		samples = append(samples, score(dsq))
	})
	return FitGumbelFixedLambda(samples, Lambda)
}

// CalibrateExponential simulates random sequences, scores them, and
// anchors the exponential tail — used for Forward scores.
func CalibrateExponential(score Scorer, bg []float64, opts CalibrateOptions) (Exponential, error) {
	samples := make([]float64, 0, opts.N)
	sampleSeqs(opts, bg, func(dsq []byte) {
		samples = append(samples, score(dsq))
	})
	return FitExpTailFixedLambda(samples, Lambda, opts.TailMass)
}
