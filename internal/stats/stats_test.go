package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestGumbelSurvCDFComplement(t *testing.T) {
	g := Gumbel{Mu: -8.5, Lambda: Lambda}
	f := func(raw int16) bool {
		x := float64(raw) / 100
		s, c := g.Surv(x), g.CDF(x)
		return math.Abs(s+c-1) < 1e-7 && s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGumbelSurvMonotone(t *testing.T) {
	g := Gumbel{Mu: 0, Lambda: Lambda}
	prev := 1.1
	for x := -10.0; x < 40; x += 0.5 {
		s := g.Surv(x)
		if s > prev {
			t.Fatalf("Surv not monotone at %g: %g > %g", x, s, prev)
		}
		prev = s
	}
}

func TestGumbelHighTailStability(t *testing.T) {
	// Far tail must not underflow to 0 abruptly or go negative.
	g := Gumbel{Mu: 0, Lambda: Lambda}
	s := g.Surv(50)
	want := math.Exp(-Lambda * 50)
	if math.Abs(s-want)/want > 1e-6 {
		t.Errorf("far-tail Surv(50) = %g, want ~%g", s, want)
	}
}

func TestGumbelScoreForPInverts(t *testing.T) {
	g := Gumbel{Mu: -5, Lambda: Lambda}
	for _, p := range []float64{0.5, 0.1, 0.02, 1e-3} {
		x := g.ScoreForP(p)
		if got := g.Surv(x); math.Abs(got-p)/p > 1e-6 {
			t.Errorf("Surv(ScoreForP(%g)) = %g", p, got)
		}
	}
	if !math.IsNaN(g.ScoreForP(0)) || !math.IsNaN(g.ScoreForP(1)) {
		t.Error("ScoreForP should reject boundary P-values")
	}
}

func TestFitGumbelRecoversMu(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := Gumbel{Mu: -7.3, Lambda: Lambda}
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	fit, err := FitGumbelFixedLambda(samples, Lambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-truth.Mu) > 0.1 {
		t.Errorf("fitted mu %g, want %g", fit.Mu, truth.Mu)
	}
}

func TestFitGumbelEmpty(t *testing.T) {
	if _, err := FitGumbelFixedLambda(nil, Lambda); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestExponentialSurv(t *testing.T) {
	e := Exponential{Tau: -2, Lambda: Lambda}
	if e.Surv(-5) != 1 {
		t.Error("below tau should be 1")
	}
	if got := e.Surv(-2 + 1/Lambda); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("Surv = %g", got)
	}
	for _, p := range []float64{1, 0.5, 1e-4} {
		x := e.ScoreForP(p)
		if got := e.Surv(x); math.Abs(got-p)/p > 1e-9 {
			t.Errorf("exp ScoreForP(%g) inversion: %g", p, got)
		}
	}
}

func TestFitExpTailAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Exponential samples above tau=-3.
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = -3 - math.Log(1-rng.Float64())/Lambda
	}
	fit, err := FitExpTailFixedLambda(samples, Lambda, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Tau-(-3)) > 0.15 {
		t.Errorf("fitted tau %g, want -3", fit.Tau)
	}
	// Tail P-values should be accurate.
	sort.Float64s(samples)
	q99 := samples[int(0.99*float64(len(samples)))]
	if got := fit.Surv(q99); got < 0.005 || got > 0.02 {
		t.Errorf("Surv at empirical 99%% quantile = %g, want ~0.01", got)
	}
	if _, err := FitExpTailFixedLambda(samples, Lambda, 1.5); err == nil {
		t.Error("bad tail mass accepted")
	}
}

func TestCalibrationPValueUniformity(t *testing.T) {
	// Scores drawn from a Gumbel, calibrated, then fresh scores'
	// P-values must be ~Uniform(0,1): the property that makes filter
	// thresholds meaningful.
	rng := rand.New(rand.NewSource(3))
	truth := Gumbel{Mu: -6, Lambda: Lambda}
	score := func(dsq []byte) float64 { return truth.Sample(rng) }
	bg := []float64{0.25, 0.25, 0.25, 0.25}
	fit, err := CalibrateGumbel(score, bg, CalibrateOptions{N: 2000, L: 10, Seed: 4, TailMass: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	n := 2000
	count02 := 0
	for i := 0; i < n; i++ {
		p := fit.Surv(truth.Sample(rng))
		if p < 0.02 {
			count02++
		}
	}
	frac := float64(count02) / float64(n)
	if frac < 0.01 || frac > 0.035 {
		t.Errorf("P<0.02 fraction = %.4f, want ~0.02", frac)
	}
}

func TestSampleSeqsRespectsBackground(t *testing.T) {
	bg := []float64{0.7, 0.2, 0.1}
	counts := make([]int, 3)
	total := 0
	sampleSeqs(CalibrateOptions{N: 200, L: 100, Seed: 5}, bg, func(dsq []byte) {
		for _, c := range dsq {
			counts[c]++
			total++
		}
	})
	for r, want := range bg {
		got := float64(counts[r]) / float64(total)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("residue %d frequency %.3f, want %.3f", r, got, want)
		}
	}
}

func TestEValue(t *testing.T) {
	if EValue(1e-3, 1000) != 1.0 {
		t.Error("EValue arithmetic")
	}
}

func TestBitsFromNats(t *testing.T) {
	if math.Abs(BitsFromNats(math.Ln2)-1) > 1e-15 {
		t.Error("BitsFromNats")
	}
}

func TestEmpiricalFDR(t *testing.T) {
	// Strong targets, weak decoys: FDR ~ 0 at the top.
	targets := []float64{1e-30, 1e-20, 1e-10, 0.5, 2, 8}
	decoys := []float64{1, 3, 9}
	fdr := EmpiricalFDR(targets, decoys)
	if len(fdr) != len(targets) {
		t.Fatalf("got %d entries", len(fdr))
	}
	if fdr[0] != 0 || fdr[2] != 0 {
		t.Errorf("top hits should have FDR 0: %v", fdr)
	}
	// At E=2 (5th target), one decoy (E=1) is at or below -> 1/5.
	if math.Abs(fdr[4]-0.2) > 1e-12 {
		t.Errorf("fdr[4] = %g, want 0.2", fdr[4])
	}
	// At E=8 (6th target), two decoys -> 2/6.
	if math.Abs(fdr[5]-2.0/6) > 1e-12 {
		t.Errorf("fdr[5] = %g, want 1/3", fdr[5])
	}
	// Monotone non-decreasing.
	for i := 1; i < len(fdr); i++ {
		if fdr[i] < fdr[i-1] {
			t.Fatalf("FDR not monotone: %v", fdr)
		}
	}
	// All decoys, no signal: FDR -> 1.
	all := EmpiricalFDR([]float64{1, 2}, []float64{0.1, 0.2, 0.3})
	if all[0] != 1 || all[1] != 1 {
		t.Errorf("pure-noise FDR = %v, want 1s", all)
	}
	if got := EmpiricalFDR(nil, nil); len(got) != 0 {
		t.Error("empty input should yield empty output")
	}
}
