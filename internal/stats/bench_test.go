package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkGumbelSurv(b *testing.B) {
	g := Gumbel{Mu: -8, Lambda: Lambda}
	for i := 0; i < b.N; i++ {
		g.Surv(float64(i % 40))
	}
}

func BenchmarkFitGumbel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := Gumbel{Mu: -8, Lambda: Lambda}
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = g.Sample(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGumbelFixedLambda(samples, Lambda); err != nil {
			b.Fatal(err)
		}
	}
}
