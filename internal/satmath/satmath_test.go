package satmath

import (
	"testing"
	"testing/quick"
)

func TestAddU8Property(t *testing.T) {
	f := func(a, b uint8) bool {
		want := int(a) + int(b)
		if want > 255 {
			want = 255
		}
		return int(AddU8(a, b)) == want && AddU8(a, b) == AddU8(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubU8Property(t *testing.T) {
	f := func(a, b uint8) bool {
		want := int(a) - int(b)
		if want < 0 {
			want = 0
		}
		return int(SubU8(a, b)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddI16Property(t *testing.T) {
	f := func(a, b int16) bool {
		want := int(a) + int(b)
		if want > 32767 {
			want = 32767
		}
		if want < -32768 {
			want = -32768
		}
		return int(AddI16(a, b)) == want && AddI16(a, b) == AddI16(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubI16Property(t *testing.T) {
	f := func(a, b int16) bool {
		want := int(a) - int(b)
		if want > 32767 {
			want = 32767
		}
		if want < -32768 {
			want = -32768
		}
		return int(SubI16(a, b)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxOps(t *testing.T) {
	if MaxU8(3, 250) != 250 || MaxU8(250, 3) != 250 || MaxU8(7, 7) != 7 {
		t.Error("MaxU8 broken")
	}
	if MaxI16(-5, 5) != 5 || MaxI16(NegInf16, 0) != 0 || MaxI16(-3, -3) != -3 {
		t.Error("MaxI16 broken")
	}
}

func TestNegInfAbsorbs(t *testing.T) {
	// NegInf16 plus any negative stays at the floor — the property the
	// Viterbi filter relies on for unreachable states.
	for _, d := range []int16{-32768, -1000, -1, 0} {
		if AddI16(NegInf16, d) != NegInf16 {
			t.Errorf("NegInf16 + %d = %d, want NegInf16", d, AddI16(NegInf16, d))
		}
	}
}

func TestSaturationEdges(t *testing.T) {
	if AddU8(255, 255) != 255 || AddU8(255, 0) != 255 || AddU8(0, 0) != 0 {
		t.Error("AddU8 edges")
	}
	if SubU8(0, 255) != 0 || SubU8(255, 255) != 0 {
		t.Error("SubU8 edges")
	}
	if AddI16(32767, 1) != 32767 || AddI16(-32768, -1) != -32768 {
		t.Error("AddI16 edges")
	}
	if SubI16(-32768, 1) != -32768 || SubI16(32767, -1) != 32767 {
		t.Error("SubI16 edges")
	}
}
