// Package satmath provides the saturating integer arithmetic used by
// the quantised MSV (8-bit unsigned) and Viterbi (16-bit signed)
// filters. These mirror the SSE psubusb/paddusb/paddsw/psubsw
// semantics that HMMER3's vector filters rely on; every engine in this
// repository (scalar golden, striped CPU, GPU kernels) goes through
// these helpers so their scores agree bit-for-bit.
package satmath

// AddU8 returns a+b saturated to 255.
func AddU8(a, b uint8) uint8 {
	s := uint16(a) + uint16(b)
	if s > 255 {
		return 255
	}
	return uint8(s)
}

// SubU8 returns a-b saturated to 0.
func SubU8(a, b uint8) uint8 {
	if a < b {
		return 0
	}
	return a - b
}

// MaxU8 returns the larger of a and b.
func MaxU8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

// AddI16 returns a+b saturated to [-32768, 32767].
func AddI16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// SubI16 returns a-b saturated to [-32768, 32767].
func SubI16(a, b int16) int16 {
	s := int32(a) - int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// MaxI16 returns the larger of a and b.
func MaxI16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}

// NegInf16 is the 16-bit stand-in for minus infinity. Saturating adds
// keep values at or near this floor, which is the behaviour the
// Viterbi filter depends on.
const NegInf16 = int16(-32768)
