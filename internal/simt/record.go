package simt

import (
	"reflect"
	"strings"
	"unicode"

	"hmmer3gpu/internal/obs"
)

// Record merges the launch counters into reg under the simt
// subsystem, one counter per struct field (hmmer_simt_alu_ops_total,
// hmmer_simt_bank_conflict_replays_total, ...). The field walk is
// reflective, so a counter added to KernelStats can never silently
// drop out of the metrics table, and the derived lane-utilization
// gauge is recomputed from the accumulated totals.
func (s *KernelStats) Record(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	v := reflect.ValueOf(*s)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		reg.AddInt("hmmer_simt_"+SnakeCase(t.Field(i).Name)+"_total", v.Field(i).Int())
	}
	active, _ := reg.Get("hmmer_simt_active_lane_slots_total")
	total, _ := reg.Get("hmmer_simt_total_lane_slots_total")
	reg.Set("hmmer_simt_lane_utilization", obs.Ratio(active, total))
	reg.Help("hmmer_simt_lane_utilization",
		"fraction of SIMT lane slots doing real work across memory operations")
	reg.Help("hmmer_simt_bank_conflict_replays_total",
		"excess shared-memory cycles spent replaying bank-conflicting accesses")
}

// Record merges one launch's counters into reg and gauges its
// achieved occupancy under the named kernel.
func (r *LaunchReport) Record(reg *obs.Registry, kernel string) {
	if !reg.Enabled() {
		return
	}
	r.Stats.Record(reg)
	name := obs.WithLabel("hmmer_simt_occupancy", "kernel", kernel)
	reg.Set(name, r.Occupancy.Fraction)
	reg.AddInt(obs.WithLabel("hmmer_simt_launches_total", "kernel", kernel), 1)
}

// SnakeCase converts a Go field name (ALUOps, WarpsExecuted) to the
// metric-name fragment (alu_ops, warps_executed). Exported so the
// kernprof profiler names its counters with the same reflective
// convention and the two tables can never drift apart.
func SnakeCase(name string) string {
	var b strings.Builder
	runes := []rune(name)
	for i, r := range runes {
		if unicode.IsUpper(r) {
			// Open a word at a lower→upper edge, or at the last upper
			// of an acronym run followed by a lower (ALUOps → alu_ops).
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
