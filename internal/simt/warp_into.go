package simt

import "math"

// Allocation-free variants of the shared-memory and shuffle operations
// for use in kernel inner loops. Semantics and accounting are identical
// to the allocating versions; dst must have one element per lane.

// SharedLoadU8Into gathers one byte per lane into dst.
func (w *Warp) SharedLoadU8Into(dst []uint8, addrs []int) {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedAccess(w, sm, addrs, false)
	}
	if sm.trackRaces {
		sm.noteAccess(int32(w.WarpInBlock), addrs, 1, false)
	}
	for i, a := range addrs {
		if a >= 0 {
			dst[i] = sm.at(a)
		}
	}
}

// SharedLoadI16Into gathers one 16-bit word per lane into dst.
func (w *Warp) SharedLoadI16Into(dst []int16, addrs []int) {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedAccess(w, sm, addrs, false)
	}
	if sm.trackRaces {
		sm.noteAccess(int32(w.WarpInBlock), addrs, 2, false)
	}
	for i, a := range addrs {
		if a >= 0 {
			dst[i] = int16(uint16(sm.at(a)) | uint16(sm.at(a+1))<<8)
		}
	}
}

// ShflXorI32Into performs the butterfly exchange into dst (dst and
// vals must not alias).
func (w *Warp) ShflXorI32Into(dst, vals []int32, mask int) {
	if !w.dev.Spec.HasShuffle {
		w.fail("shfl.xor", "no warp shuffle on this device")
	}
	if w.cost != nil {
		w.cost.Shuffle(w)
	}
	for l := range vals {
		dst[l] = vals[l^mask]
	}
}

// ShflUpI32Into is the shfl.up exchange: lane l receives lane
// l-delta's value; the low delta lanes keep their own (dst and vals
// must not alias).
func (w *Warp) ShflUpI32Into(dst, vals []int32, delta int) {
	if !w.dev.Spec.HasShuffle {
		w.fail("shfl.up", "no warp shuffle on this device")
	}
	if w.cost != nil {
		w.cost.Shuffle(w)
	}
	for l := range vals {
		if l >= delta {
			dst[l] = vals[l-delta]
		} else {
			dst[l] = vals[l]
		}
	}
}

// SharedLoadF32Into gathers one float32 per lane (byte addresses, 4-aligned).
func (w *Warp) SharedLoadF32Into(dst []float32, addrs []int) {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedAccess(w, sm, addrs, false)
	}
	if sm.trackRaces {
		sm.noteAccess(int32(w.WarpInBlock), addrs, 4, false)
	}
	for i, a := range addrs {
		if a >= 0 {
			bits := uint32(sm.at(a)) | uint32(sm.at(a+1))<<8 |
				uint32(sm.at(a+2))<<16 | uint32(sm.at(a+3))<<24
			dst[i] = math.Float32frombits(bits)
		}
	}
}

// SharedStoreF32 scatters one float32 per lane.
func (w *Warp) SharedStoreF32(addrs []int, vals []float32) {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedAccess(w, sm, addrs, true)
	}
	if sm.trackRaces {
		sm.noteAccess(int32(w.WarpInBlock), addrs, 4, true)
	}
	for i, a := range addrs {
		if a >= 0 {
			bits := math.Float32bits(vals[i])
			sm.data[a] = byte(bits)
			sm.data[a+1] = byte(bits >> 8)
			sm.data[a+2] = byte(bits >> 16)
			sm.data[a+3] = byte(bits >> 24)
		}
	}
}

// ShflXorF32Into is the float butterfly exchange.
func (w *Warp) ShflXorF32Into(dst, vals []float32, mask int) {
	if !w.dev.Spec.HasShuffle {
		w.fail("shfl.xor", "no warp shuffle on this device")
	}
	if w.cost != nil {
		w.cost.Shuffle(w)
	}
	for l := range vals {
		dst[l] = vals[l^mask]
	}
}

// ShflUpF32Into is the float shuffle-up exchange.
func (w *Warp) ShflUpF32Into(dst, vals []float32, delta int) {
	if !w.dev.Spec.HasShuffle {
		w.fail("shfl.up", "no warp shuffle on this device")
	}
	if w.cost != nil {
		w.cost.Shuffle(w)
	}
	for l := range vals {
		if l >= delta {
			dst[l] = vals[l-delta]
		} else {
			dst[l] = vals[l]
		}
	}
}
