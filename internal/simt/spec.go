// Package simt is a warp-accurate simulator of the CUDA SIMT execution
// model, built as the stand-in for the NVIDIA hardware the paper runs
// on (Tesla K40 Kepler and GTX 580 Fermi). Kernels are ordinary Go
// functions written against a Warp context that provides 32-lane
// shared-memory access with bank-conflict accounting, global-memory
// access with coalescing-transaction accounting, Kepler warp shuffles,
// warp votes, and block barriers. The simulator enforces the warp as
// the atomic unit of execution, detects cross-warp shared-memory races
// between barriers, and records the instruction and memory counters
// that the performance model (internal/perf) converts into kernel
// time through the standard CUDA occupancy calculation.
package simt

import "fmt"

// Arch identifies a GPU micro-architecture generation.
type Arch int

const (
	// Fermi is the GF100/GF110 generation (GTX 580): no warp shuffle,
	// 32K registers per SM, 2 schedulers with single dispatch.
	Fermi Arch = iota
	// Kepler is the GK110 generation (Tesla K40): warp shuffle, 64K
	// registers per SM, 4 schedulers with dual dispatch.
	Kepler
)

func (a Arch) String() string {
	switch a {
	case Fermi:
		return "Fermi"
	case Kepler:
		return "Kepler"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// DeviceSpec describes the resources of one simulated device.
type DeviceSpec struct {
	Name string
	Arch Arch

	// SMCount is the number of streaming multiprocessors (SM/SMX).
	SMCount int
	// WarpSize is the number of lanes per warp (32 on all CUDA parts).
	WarpSize int
	// MaxWarpsPerSM limits resident warps per multiprocessor.
	MaxWarpsPerSM int
	// MaxBlocksPerSM limits resident blocks per multiprocessor.
	MaxBlocksPerSM int
	// MaxThreadsPerBlock is the per-block thread limit.
	MaxThreadsPerBlock int
	// RegistersPerSM is the 32-bit register file size per SM.
	RegistersPerSM int
	// RegAllocUnit is the register allocation granularity
	// (registers are allocated per warp in units of this many).
	RegAllocUnit int
	// SharedMemPerSM is the shared memory per SM in bytes.
	SharedMemPerSM int
	// SharedMemPerBlockMax caps a single block's shared memory.
	SharedMemPerBlockMax int
	// SharedMemBanks is the number of shared memory banks (32).
	SharedMemBanks int

	// ClockHz is the core clock.
	ClockHz float64
	// SchedulersPerSM is the number of warp schedulers per SM.
	SchedulersPerSM int
	// DispatchPerScheduler is the instructions dispatched per
	// scheduler per cycle (Kepler dual-issue = 2).
	DispatchPerScheduler int
	// HasShuffle reports warp-shuffle instruction support (Kepler).
	HasShuffle bool
	// ECC reports hardware error-correcting memory: an ECC device
	// corrects injected silent bit flips (counting them) instead of
	// surfacing corrupted data. The Tesla parts have it; the consumer
	// GTX cards do not.
	ECC bool
	// MemBandwidth is the global memory bandwidth in bytes/second.
	MemBandwidth float64
	// GlobalLatency is the global memory latency in cycles.
	GlobalLatency float64
	// SharedLatency is the shared memory latency in cycles.
	SharedLatency float64
}

// TeslaK40 returns the Kepler GK110B part used for the paper's
// single-GPU results.
func TeslaK40() DeviceSpec {
	return DeviceSpec{
		Name:                 "Tesla K40 (Kepler GK110B)",
		Arch:                 Kepler,
		SMCount:              15,
		WarpSize:             32,
		MaxWarpsPerSM:        64,
		MaxBlocksPerSM:       16,
		MaxThreadsPerBlock:   1024,
		RegistersPerSM:       65536,
		RegAllocUnit:         256,
		SharedMemPerSM:       49152,
		SharedMemPerBlockMax: 49152,
		SharedMemBanks:       32,
		ClockHz:              745e6,
		SchedulersPerSM:      4,
		DispatchPerScheduler: 2,
		HasShuffle:           true,
		ECC:                  true,
		MemBandwidth:         288e9,
		GlobalLatency:        400,
		SharedLatency:        30,
	}
}

// GTX580 returns the Fermi GF110 part used for the paper's multi-GPU
// scalability study.
func GTX580() DeviceSpec {
	return DeviceSpec{
		Name:                 "GeForce GTX 580 (Fermi GF110)",
		Arch:                 Fermi,
		SMCount:              16,
		WarpSize:             32,
		MaxWarpsPerSM:        48,
		MaxBlocksPerSM:       8,
		MaxThreadsPerBlock:   1024,
		RegistersPerSM:       32768,
		RegAllocUnit:         64,
		SharedMemPerSM:       49152,
		SharedMemPerBlockMax: 49152,
		SharedMemBanks:       32,
		ClockHz:              772e6, // core clock: Fermi issues one warp instruction per scheduler per core cycle (the 1544 MHz "hot" clock runs the ALUs at 2x, one half-warp per hot cycle)
		SchedulersPerSM:      2,
		DispatchPerScheduler: 1,
		HasShuffle:           false,
		MemBandwidth:         192e9,
		GlobalLatency:        600,
		SharedLatency:        40,
	}
}

// KernelResources declares the per-thread/per-block resource usage of
// a kernel, the inputs to the occupancy calculation.
type KernelResources struct {
	RegsPerThread   int
	SharedPerBlock  int
	ThreadsPerBlock int
}

// Occupancy is the result of the CUDA occupancy calculation.
type Occupancy struct {
	BlocksPerSM int
	WarpsPerSM  int
	// Fraction is resident warps / MaxWarpsPerSM, the paper's
	// occupancy metric ("the ratio of the total number of resident
	// threads (warps) and the maximum theoretical number of threads
	// per multiprocessor").
	Fraction float64
	// Limiter names the resource that bounds residency:
	// "warps", "blocks", "registers", "shared", or "none" when no
	// block fits at all.
	Limiter string
}

// CalcOccupancy runs the standard CUDA occupancy calculation for a
// kernel with resource usage r on this device.
func (d DeviceSpec) CalcOccupancy(r KernelResources) Occupancy {
	warpsPerBlock := (r.ThreadsPerBlock + d.WarpSize - 1) / d.WarpSize
	if warpsPerBlock == 0 {
		warpsPerBlock = 1
	}

	// Register allocation: per warp, rounded to the allocation unit.
	regsPerWarp := r.RegsPerThread * d.WarpSize
	if d.RegAllocUnit > 0 {
		regsPerWarp = (regsPerWarp + d.RegAllocUnit - 1) / d.RegAllocUnit * d.RegAllocUnit
	}
	regsPerBlock := regsPerWarp * warpsPerBlock

	byWarps := d.MaxWarpsPerSM / warpsPerBlock
	byBlocks := d.MaxBlocksPerSM
	byRegs := byWarps
	if regsPerBlock > 0 {
		byRegs = d.RegistersPerSM / regsPerBlock
	}
	byShared := byWarps
	if r.SharedPerBlock > 0 {
		if r.SharedPerBlock > d.SharedMemPerBlockMax {
			byShared = 0
		} else {
			byShared = d.SharedMemPerSM / r.SharedPerBlock
		}
	}

	blocks := byWarps
	limiter := "warps"
	if byBlocks < blocks {
		blocks, limiter = byBlocks, "blocks"
	}
	if byRegs < blocks {
		blocks, limiter = byRegs, "registers"
	}
	if byShared < blocks {
		blocks, limiter = byShared, "shared"
	}
	if blocks <= 0 {
		return Occupancy{Limiter: "none"}
	}
	warps := blocks * warpsPerBlock
	if warps > d.MaxWarpsPerSM {
		warps = d.MaxWarpsPerSM
	}
	return Occupancy{
		BlocksPerSM: blocks,
		WarpsPerSM:  warps,
		Fraction:    float64(warps) / float64(d.MaxWarpsPerSM),
		Limiter:     limiter,
	}
}

// String renders the occupancy result compactly.
func (o Occupancy) String() string {
	return fmt.Sprintf("%d blocks/SM, %d warps/SM (%.0f%%, %s-limited)",
		o.BlocksPerSM, o.WarpsPerSM, o.Fraction*100, o.Limiter)
}
