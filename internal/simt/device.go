package simt

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hmmer3gpu/internal/obs"
)

// ErrLaunchCanceled is returned by Launch when LaunchConfig.Cancel
// closes before the grid finishes: blocks stop being scheduled (an
// in-flight block completes first — the simulator's analogue of a real
// device draining its resident blocks) and the partial results are
// discarded by the caller.
var ErrLaunchCanceled = errors.New("simt: launch canceled")

// Device is one simulated GPU.
type Device struct {
	Spec DeviceSpec
	// Label names the device's timeline track in traces; NewSystem
	// assigns "device0".."deviceN-1".
	Label string
	// Faults, when non-nil, arbitrates every launch: the injector can
	// make Launch return typed fault errors on chosen launch ordinals
	// or probabilistically (see FaultInjector). Nil injects nothing.
	Faults *FaultInjector
	// LaunchTimeout is the per-launch deadline: a grid that has not
	// completed within it makes Launch return ErrDeviceHung (the
	// abandoned grid finishes on leaked goroutines whose results are
	// discarded). 0 disables the watchdog.
	LaunchTimeout time.Duration
	// Mode selects cycle-accurate accounting (the default) or fast
	// functional execution with a nil CostModel; see Mode.
	Mode Mode
	// Profiler, when non-nil, receives a per-block counter profile of
	// every successful launch (see Profiler in profiler.go). Nil — the
	// default — collects nothing and costs one comparison per block.
	Profiler Profiler

	mu         sync.Mutex
	nextGlobal int64
}

// NewDevice creates a device with the given spec.
func NewDevice(spec DeviceSpec) *Device {
	return &Device{Spec: spec, Label: "device0"}
}

// Track returns the device's trace track name.
func (d *Device) Track() string {
	if d.Label == "" {
		return "device"
	}
	return d.Label
}

// AllocGlobal reserves a logical global-memory address range and
// returns its 128-byte-aligned base. The simulator meters traffic by
// address; data itself lives in ordinary Go buffers on the host side.
func (d *Device) AllocGlobal(size int64) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	base := d.nextGlobal
	d.nextGlobal += (size + 127) &^ 127
	return base
}

// ReadbackFaults returns the silent bit flips to apply to a result
// buffer of n 64-bit words as it is read back from this device after
// a launch; callers XOR each flip into the corresponding word. On an
// ECC device the flips are corrected (and counted) instead, so the
// returned slice is nil. A device without a memory-fault injector
// always returns nil.
func (d *Device) ReadbackFaults(n int) []ReadbackFlip {
	if d.Faults == nil {
		return nil
	}
	return d.Faults.Mem.readbackFaults(n, d.Spec.ECC)
}

// LaunchConfig describes a kernel launch: the paper's geometry is a
// grid of Blocks, each holding WarpsPerBlock warps of 32 threads
// (blockDim.x = 32, blockDim.y = WarpsPerBlock).
type LaunchConfig struct {
	Blocks              int
	WarpsPerBlock       int
	SharedBytesPerBlock int
	// RegsPerThread is the kernel's register footprint, used by the
	// occupancy calculation.
	RegsPerThread int
	// Cooperative enables block barriers (Warp.Sync); the paper's
	// warp-synchronous kernels launch with Cooperative=false and can
	// never stall.
	Cooperative bool
	// DetectRaces turns on cross-warp shared-memory race tracking.
	DetectRaces bool
	// HostWorkers caps the number of host goroutines executing blocks;
	// 0 means GOMAXPROCS.
	HostWorkers int
	// Name labels the kernel in traces ("msv", "p7viterbi", "forward").
	Name string
	// Cancel, when non-nil, aborts the launch once closed: the grid
	// stops scheduling new blocks and Launch returns ErrLaunchCanceled
	// — the mid-kernel cancellation check that lets a context deadline
	// interrupt a long launch between blocks instead of waiting for
	// the whole grid.
	Cancel <-chan struct{}
	// Trace, when non-nil, parents a kernel span emitted on this
	// device's track, annotated with the launch geometry, occupancy,
	// and headline counters.
	Trace *obs.Span
}

// LaunchReport returns the aggregate counters and the occupancy
// achieved by a launch.
type LaunchReport struct {
	Stats     KernelStats
	Occupancy Occupancy
}

type blockRun struct {
	shared  *SharedMem
	barrier *blockBarrier
}

// blockCtx is one worker's reusable execution context: the shared
// memory, warp structs and stat accumulator are allocated once per
// worker and recycled across every block the worker claims, so the
// per-block cost is a reset instead of an allocation burst.
type blockCtx struct {
	run   blockRun
	warps []Warp
	stats KernelStats
	// samples accumulates this worker's profiled blocks when the
	// device has a Profiler attached (nil otherwise).
	samples []BlockProfile
}

// Launch executes kernel over the grid and aggregates statistics
// deterministically (warp order within block, block order within
// grid), regardless of host scheduling.
func (d *Device) Launch(cfg LaunchConfig, kernel func(*Warp)) (*LaunchReport, error) {
	spec := d.Spec
	if cfg.Blocks < 1 || cfg.WarpsPerBlock < 1 {
		return nil, fmt.Errorf("simt: launch geometry %dx%d invalid", cfg.Blocks, cfg.WarpsPerBlock)
	}
	if threads := cfg.WarpsPerBlock * spec.WarpSize; threads > spec.MaxThreadsPerBlock {
		return nil, fmt.Errorf("simt: %d threads per block exceeds device limit %d", threads, spec.MaxThreadsPerBlock)
	}
	if cfg.SharedBytesPerBlock > spec.SharedMemPerBlockMax {
		return nil, fmt.Errorf("simt: %d bytes shared per block exceeds device limit %d",
			cfg.SharedBytesPerBlock, spec.SharedMemPerBlockMax)
	}
	occ := spec.CalcOccupancy(KernelResources{
		RegsPerThread:   cfg.RegsPerThread,
		SharedPerBlock:  cfg.SharedBytesPerBlock,
		ThreadsPerBlock: cfg.WarpsPerBlock * spec.WarpSize,
	})
	if occ.BlocksPerSM == 0 {
		return nil, fmt.Errorf("simt: kernel resources exceed SM capacity (limiter %q)", occ.Limiter)
	}

	kname := cfg.Name
	if kname == "" {
		kname = "kernel"
	} else {
		kname = "kernel:" + kname
	}
	span := cfg.Trace.ChildOn(d.Track(), kname,
		obs.Int("blocks", int64(cfg.Blocks)),
		obs.Int("warps_per_block", int64(cfg.WarpsPerBlock)),
		obs.Int("shared_bytes_per_block", int64(cfg.SharedBytesPerBlock)),
		obs.Float("occupancy", occ.Fraction),
		obs.String("occupancy_limiter", occ.Limiter),
		obs.String("sim_mode", d.Mode.String()))

	if err := d.Faults.onLaunch(d.Track()); err != nil {
		span.Annotate(obs.Bool("fault_injected", true), obs.String("error", err.Error()))
		span.End()
		return nil, err
	}

	// Silent corruption: draw this launch's shared-memory flips once,
	// up front, so the applied faults are deterministic regardless of
	// how the host schedules the blocks below.
	memPlan := d.Faults.memPlan(spec.ECC, cfg.SharedBytesPerBlock, cfg.Blocks)

	// The launch's cost model: nil in fast mode, so every warp
	// operation's accounting collapses to one predictable branch.
	var cost CostModel
	if d.Mode != ModeFast {
		cost = cycleModel{}
	}

	// Profiling stride: 0 disables collection entirely (the common
	// case), 1 profiles every block (always in cycle mode), and a
	// fast-mode profiler may thin collection to every Nth block.
	prof := d.Profiler
	stride := 0
	if prof != nil {
		stride = 1
		if cost == nil {
			if s := prof.SamplePeriod(); s > 1 {
				stride = s
			}
		}
	}

	workers := cfg.HostWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Blocks {
		workers = cfg.Blocks
	}

	// A panic in a kernel is recovered into a *KernelPanicError rather
	// than killing the process: the first panicking warp wins, its
	// block's barrier is poisoned so sibling warps parked in
	// __syncthreads unblock (they re-panic with barrierBroken, which is
	// swallowed), and remaining blocks are skipped.
	var panicked atomic.Bool
	var panicMu sync.Mutex
	var panicErr *KernelPanicError

	capture := func(block int, r any) {
		kp := &KernelPanicError{
			Device: d.Track(),
			Spec:   spec.Name,
			Kernel: cfg.Name,
			Block:  block,
			Warp:   -1,
			Value:  r,
			Stack:  string(debug.Stack()),
		}
		if kf, ok := r.(*kernelFault); ok {
			kp.Block, kp.Warp, kp.Op, kp.Value = kf.block, kf.warp, kf.op, kf.msg
		}
		panicMu.Lock()
		if panicErr == nil {
			panicErr = kp
		}
		panicMu.Unlock()
		panicked.Store(true)
	}

	// concurrent: only a cooperative multi-warp block runs its warps on
	// separate goroutines (they must all make progress to reach the
	// barrier); warp-synchronous blocks — the paper's kernels — run
	// their warps serially on the claiming worker with no locking.
	concurrent := cfg.Cooperative && cfg.WarpsPerBlock > 1

	newCtx := func() *blockCtx {
		return &blockCtx{
			run: blockRun{
				shared: newSharedMem(cfg.SharedBytesPerBlock, spec.SharedMemBanks, cfg.DetectRaces),
			},
			warps: make([]Warp, cfg.WarpsPerBlock),
		}
	}

	// runWarp is shared by every block a worker claims; it captures
	// only launch-lifetime state so the per-block path allocates
	// nothing (a closure per block would cost one heap object each).
	runWarp := func(w *Warp, br *blockRun, b int) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(barrierBroken); ok {
					return
				}
				capture(b, r)
				if br.barrier != nil {
					br.barrier.poison()
				}
			}
		}()
		kernel(w)
	}

	runBlock := func(bc *blockCtx, b int) {
		var faults map[int]byte
		if memPlan != nil {
			faults = memPlan.shared[b]
		}
		br := &bc.run
		br.shared.reset(faults, concurrent)
		br.barrier = nil
		if cfg.Cooperative {
			// A one-warp cooperative block syncs trivially (n=1).
			br.barrier = newBlockBarrier(cfg.WarpsPerBlock)
		}
		sampled := stride > 0 && b%stride == 0
		bcost := cost
		if sampled && bcost == nil {
			// Fast-mode sampling: the sampled block runs with full cycle
			// accounting attached. Accounting is pure bookkeeping — data
			// movement, faults and races are identical — so results stay
			// byte-identical to an unprofiled fast run.
			bcost = cycleModel{}
		}
		for wi := range bc.warps {
			bc.warps[wi] = Warp{
				BlockIdx:      b,
				WarpInBlock:   wi,
				NumBlocks:     cfg.Blocks,
				WarpsPerBlock: cfg.WarpsPerBlock,
				dev:           d,
				block:         br,
				cost:          bcost,
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			wg.Add(len(bc.warps) - 1)
			for wi := 1; wi < len(bc.warps); wi++ {
				go func(w *Warp) {
					defer wg.Done()
					runWarp(w, br, b)
				}(&bc.warps[wi])
			}
			runWarp(&bc.warps[0], br, b)
			wg.Wait()
		} else {
			for wi := range bc.warps {
				runWarp(&bc.warps[wi], br, b)
				if panicked.Load() {
					break
				}
			}
		}
		if sampled {
			var bs KernelStats
			for wi := range bc.warps {
				w := &bc.warps[wi]
				w.stats.WarpsExecuted = 1
				bs.Add(&w.stats)
			}
			bs.SharedRaces += br.shared.races
			bc.stats.Add(&bs)
			bc.samples = append(bc.samples, BlockProfile{Block: b, Stats: bs})
			return
		}
		for wi := range bc.warps {
			w := &bc.warps[wi]
			w.stats.WarpsExecuted = 1
			bc.stats.Add(&w.stats)
		}
		bc.stats.SharedRaces += br.shared.races
	}

	// Cancellation is polled between blocks, so an in-flight block runs
	// to completion but the rest of the grid is abandoned. canceled is
	// sticky: once observed, the launch fails even if the grid happened
	// to drain concurrently.
	var canceled atomic.Bool
	cancelRequested := func() bool {
		if cfg.Cancel == nil {
			return false
		}
		select {
		case <-cfg.Cancel:
			canceled.Store(true)
			return true
		default:
			return false
		}
	}

	// Block scheduling is a single atomic claim counter: workers pull
	// the next block index lock-free and only ever park at a true sync
	// point (a cooperative block barrier) — there is no per-warp
	// goroutine ping-pong and no scheduler mutex. Worker contexts are
	// collected for the deterministic stat sum (integer addition, so
	// claim order cannot change the totals).
	var next atomic.Int64
	var ctxMu sync.Mutex
	var ctxs []*blockCtx

	workerLoop := func(bc *blockCtx) {
		for {
			b := int(next.Add(1) - 1)
			if b >= cfg.Blocks || panicked.Load() || cancelRequested() {
				return
			}
			runBlock(bc, b)
			// The block loop has no natural yield points (the per-warp
			// goroutine design it replaced yielded constantly), so on a
			// GOMAXPROCS=1 host a launch could starve concurrent device
			// workers and cancellation senders for its whole duration.
			// One yield per block keeps multi-device interleaving fair.
			runtime.Gosched()
		}
	}

	runGrid := func() {
		if workers <= 1 {
			bc := newCtx()
			workerLoop(bc)
			ctxMu.Lock()
			ctxs = append(ctxs, bc)
			ctxMu.Unlock()
			return
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				bc := newCtx()
				workerLoop(bc)
				ctxMu.Lock()
				ctxs = append(ctxs, bc)
				ctxMu.Unlock()
			}()
		}
		wg.Wait()
	}

	if d.LaunchTimeout > 0 {
		done := make(chan struct{})
		go func() {
			runGrid()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(d.LaunchTimeout):
			// The grid keeps running on leaked goroutines; its stats are
			// never read (the report below is not built on this path).
			err := &FaultError{Device: d.Track(), Ordinal: -1, Err: ErrDeviceHung}
			span.Annotate(obs.String("error", err.Error()))
			span.End()
			return nil, err
		}
	} else {
		runGrid()
	}

	if panicErr != nil {
		span.Annotate(obs.String("error", panicErr.Error()))
		span.End()
		return nil, panicErr
	}
	if canceled.Load() {
		span.Annotate(obs.String("error", ErrLaunchCanceled.Error()))
		span.End()
		return nil, fmt.Errorf("simt: %s kernel on %s: %w", cfg.Name, d.Track(), ErrLaunchCanceled)
	}

	rep := &LaunchReport{Occupancy: occ}
	ctxMu.Lock()
	var samples []BlockProfile
	for _, bc := range ctxs {
		rep.Stats.Add(&bc.stats)
		if prof != nil {
			samples = append(samples, bc.samples...)
		}
	}
	ctxMu.Unlock()
	if prof != nil {
		sort.Slice(samples, func(i, j int) bool { return samples[i].Block < samples[j].Block })
		prof.OnLaunch(&LaunchProfile{
			Kernel:              cfg.Name,
			Device:              d.Track(),
			Spec:                spec,
			Mode:                d.Mode,
			Blocks:              cfg.Blocks,
			WarpsPerBlock:       cfg.WarpsPerBlock,
			SharedBytesPerBlock: cfg.SharedBytesPerBlock,
			RegsPerThread:       cfg.RegsPerThread,
			Occupancy:           occ,
			SamplePeriod:        stride,
			Samples:             samples,
		})
	}
	span.Annotate(
		obs.Int("warps_executed", rep.Stats.WarpsExecuted),
		obs.Int("issue_cycles", rep.Stats.IssueCycles),
		obs.Int("global_bytes", rep.Stats.GlobalBytes),
		obs.Int("bank_conflict_replays", rep.Stats.BankConflictReplays),
		obs.Float("lane_utilization", rep.Stats.LaneUtilization()))
	span.End()
	return rep, nil
}

// blockBarrier is the two-phase __syncthreads implementation: phase
// one gathers per-warp cycle counts and computes the block maximum
// (for stall modelling), phase two releases the warps after the
// epoch bookkeeping.
type blockBarrier struct {
	p1, p2 *phaseBarrier
}

func newBlockBarrier(n int) *blockBarrier {
	return &blockBarrier{p1: newPhaseBarrier(n), p2: newPhaseBarrier(n)}
}

func (b *blockBarrier) wait(cycles int64) int64 { return b.p1.wait(cycles) }
func (b *blockBarrier) release()                { b.p2.wait(0) }

// poison breaks both phases so warps parked in (or arriving at) the
// barrier panic with barrierBroken instead of waiting forever for a
// sibling that has already panicked.
func (b *blockBarrier) poison() {
	b.p1.breakBarrier()
	b.p2.breakBarrier()
}

// phaseBarrier is event-driven: the last arriver swaps in a fresh
// generation channel and closes the old one, waking every parked warp
// with a single close instead of a broadcast-and-recheck loop. Warps
// therefore park exactly once per barrier (a true sync point) and
// never spin on a condition variable.
type phaseBarrier struct {
	mu      sync.Mutex
	n       int
	count   int
	agg     int64
	result  int64
	release chan struct{}
	broken  atomic.Bool
}

func newPhaseBarrier(n int) *phaseBarrier {
	return &phaseBarrier{n: n, release: make(chan struct{})}
}

// wait blocks until all n participants have arrived and returns the
// maximum of the submitted values. A broken barrier panics with
// barrierBroken (recovered and swallowed by the launch).
//
// Waiters read b.result without the lock after waking: the two-phase
// barrier protocol guarantees the next generation cannot overwrite it
// until every waiter of this generation has re-arrived at the second
// phase, which orders the read before the write.
func (b *phaseBarrier) wait(val int64) int64 {
	b.mu.Lock()
	if b.broken.Load() {
		b.mu.Unlock()
		panic(barrierBroken{})
	}
	if val > b.agg {
		b.agg = val
	}
	b.count++
	if b.count == b.n {
		res := b.agg
		b.result = res
		b.agg = 0
		b.count = 0
		ch := b.release
		b.release = make(chan struct{})
		b.mu.Unlock()
		close(ch)
		return res
	}
	ch := b.release
	b.mu.Unlock()
	<-ch
	if b.broken.Load() {
		panic(barrierBroken{})
	}
	return b.result
}

// breakBarrier marks the barrier broken and wakes every waiter. The
// current generation channel is swapped out under the lock before
// closing, so a concurrent normal release can never double-close it.
func (b *phaseBarrier) breakBarrier() {
	b.broken.Store(true)
	b.mu.Lock()
	ch := b.release
	b.release = make(chan struct{})
	b.mu.Unlock()
	close(ch)
}
