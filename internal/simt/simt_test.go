package simt

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestOccupancyHandTable checks the occupancy calculator against
// hand-computed CUDA occupancy values.
func TestOccupancyHandTable(t *testing.T) {
	k40 := TeslaK40()
	cases := []struct {
		name       string
		r          KernelResources
		wantBlocks int
		wantWarps  int
		wantLim    string
	}{
		// 128 threads (4 warps), 32 regs/thread, no shared:
		// regs/block = 4*32*32=4096 -> 16 blocks by regs, byWarps=16,
		// byBlocks=16 -> 16 blocks * 4 warps = 64 warps = 100%.
		{"full", KernelResources{32, 0, 128}, 16, 64, "warps"},
		// 64 regs/thread halves it: regs/block = 8192 -> 8 blocks ->
		// 32 warps = 50% (the paper's Viterbi register ceiling).
		{"reg-limited", KernelResources{64, 0, 128}, 8, 32, "registers"},
		// 24KB shared per block -> 2 blocks by shared -> 8 warps.
		{"shared-limited", KernelResources{32, 24 * 1024, 128}, 2, 8, "shared"},
		// 1024 threads/block (32 warps): byWarps = 2.
		{"big-block", KernelResources{32, 0, 1024}, 2, 64, "warps"},
	}
	for _, c := range cases {
		occ := k40.CalcOccupancy(c.r)
		if occ.BlocksPerSM != c.wantBlocks || occ.WarpsPerSM != c.wantWarps {
			t.Errorf("%s: got %d blocks / %d warps, want %d / %d",
				c.name, occ.BlocksPerSM, occ.WarpsPerSM, c.wantBlocks, c.wantWarps)
		}
		if occ.Limiter != c.wantLim {
			t.Errorf("%s: limiter %q, want %q", c.name, occ.Limiter, c.wantLim)
		}
	}
}

func TestOccupancyFermiVsKepler(t *testing.T) {
	// The same 64-reg kernel achieves lower occupancy on Fermi (32K
	// registers vs 64K) — the effect the paper reports in §IV-A.
	r := KernelResources{RegsPerThread: 63, SharedPerBlock: 4096, ThreadsPerBlock: 128}
	k := TeslaK40().CalcOccupancy(r)
	f := GTX580().CalcOccupancy(r)
	if f.Fraction >= k.Fraction {
		t.Errorf("Fermi occupancy %.2f should trail Kepler %.2f for a register-heavy kernel",
			f.Fraction, k.Fraction)
	}
}

func TestOccupancyImpossibleKernel(t *testing.T) {
	occ := TeslaK40().CalcOccupancy(KernelResources{32, 64 * 1024, 128})
	if occ.BlocksPerSM != 0 || occ.Limiter != "none" {
		t.Errorf("64KB shared should not fit: %+v", occ)
	}
}

func TestLaunchValidation(t *testing.T) {
	dev := NewDevice(TeslaK40())
	nop := func(w *Warp) {}
	if _, err := dev.Launch(LaunchConfig{Blocks: 0, WarpsPerBlock: 1}, nop); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 33}, nop); err == nil {
		t.Error("block over thread limit accepted")
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 50 * 1024}, nop); err == nil {
		t.Error("oversize shared accepted")
	}
}

func TestLaunchCountsDeterministic(t *testing.T) {
	dev := NewDevice(TeslaK40())
	cfg := LaunchConfig{Blocks: 7, WarpsPerBlock: 3, SharedBytesPerBlock: 1024, RegsPerThread: 32}
	kernel := func(w *Warp) {
		w.ALU(10 + w.GlobalWarpID())
		addrs := make([]int, 32)
		for l := range addrs {
			addrs[l] = l
		}
		w.SharedStoreU8(addrs, make([]uint8, 32))
		w.SharedLoadU8(addrs)
	}
	var first KernelStats
	for trial := 0; trial < 3; trial++ {
		rep, err := dev.Launch(cfg, kernel)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = rep.Stats
			if first.WarpsExecuted != 21 {
				t.Fatalf("WarpsExecuted = %d, want 21", first.WarpsExecuted)
			}
			continue
		}
		if rep.Stats != first {
			t.Fatalf("trial %d stats differ: %+v vs %+v", trial, rep.Stats, first)
		}
	}
}

func TestSharedMemoryDataFlow(t *testing.T) {
	dev := NewDevice(TeslaK40())
	got := make([]uint8, 32)
	kernel := func(w *Warp) {
		addrs := make([]int, 32)
		vals := make([]uint8, 32)
		for l := 0; l < 32; l++ {
			addrs[l] = l
			vals[l] = uint8(l * 3)
		}
		w.SharedStoreU8(addrs, vals)
		back := w.SharedLoadU8(addrs)
		copy(got, back)
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 64}, kernel); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 32; l++ {
		if got[l] != uint8(l*3) {
			t.Fatalf("lane %d: got %d", l, got[l])
		}
	}
}

func TestSharedI16RoundTrip(t *testing.T) {
	dev := NewDevice(TeslaK40())
	var got [32]int16
	kernel := func(w *Warp) {
		addrs := make([]int, 32)
		vals := make([]int16, 32)
		for l := 0; l < 32; l++ {
			addrs[l] = 2 * l
			vals[l] = int16(-1000 + l*100)
		}
		w.SharedStoreI16(addrs, vals)
		copy(got[:], w.SharedLoadI16(addrs))
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 64}, kernel); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 32; l++ {
		if got[l] != int16(-1000+l*100) {
			t.Fatalf("lane %d: got %d", l, got[l])
		}
	}
}

func TestBankConflictAccounting(t *testing.T) {
	dev := NewDevice(TeslaK40())
	var conflictFree, conflicted KernelStats
	kernel := func(w *Warp) {
		// Consecutive bytes: 32 lanes over 8 words in 8 distinct banks
		// -> conflict-free (the paper's "intrinsic conflict-free
		// access").
		addrs := make([]int, 32)
		for l := range addrs {
			addrs[l] = l
		}
		w.SharedLoadU8(addrs)
		conflictFree = w.stats

		// Stride of 128 bytes = 32 words: every lane hits bank 0 with
		// a distinct word -> 32-way conflict.
		for l := range addrs {
			addrs[l] = l * 128
		}
		w.SharedLoadU8(addrs)
		conflicted = w.stats
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 4096}, kernel); err != nil {
		t.Fatal(err)
	}
	if conflictFree.BankConflictReplays != 0 || conflictFree.SharedLoads != 1 {
		t.Errorf("consecutive bytes: %+v", conflictFree)
	}
	if conflicted.BankConflictReplays-conflictFree.BankConflictReplays != 31 {
		t.Errorf("strided access should replay 31 times: %+v", conflicted)
	}
}

func TestBroadcastIsConflictFree(t *testing.T) {
	dev := NewDevice(TeslaK40())
	var st KernelStats
	kernel := func(w *Warp) {
		addrs := make([]int, 32)
		for l := range addrs {
			addrs[l] = 40 // same word: broadcast
		}
		w.SharedLoadU8(addrs)
		st = w.stats
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 256}, kernel); err != nil {
		t.Fatal(err)
	}
	if st.BankConflictReplays != 0 {
		t.Errorf("broadcast should not conflict: %+v", st)
	}
}

func TestCoalescingTransactions(t *testing.T) {
	cases := []struct {
		name  string
		gen   func(l int) int64
		width int
		want  int
	}{
		{"sequential-int", func(l int) int64 { return int64(4 * l) }, 4, 1},
		{"strided-256", func(l int) int64 { return int64(256 * l) }, 4, 32},
		{"same-address", func(l int) int64 { return 512 }, 4, 1},
		{"two-segments", func(l int) int64 { return int64(8 * l) }, 4, 2},
	}
	for _, c := range cases {
		addrs := make([]int64, 32)
		for l := range addrs {
			addrs[l] = c.gen(l)
		}
		if got := coalescedTransactions(addrs, c.width); got != c.want {
			t.Errorf("%s: %d transactions, want %d", c.name, got, c.want)
		}
	}
}

func TestShuffleButterflyMax(t *testing.T) {
	dev := NewDevice(TeslaK40())
	var result []int32
	kernel := func(w *Warp) {
		vals := make([]int32, 32)
		for l := range vals {
			vals[l] = int32((l * 7) % 31) // max 30 at l=... somewhere
		}
		for mask := 16; mask > 0; mask >>= 1 {
			other := w.ShflXorI32(vals, mask)
			w.ALU(1)
			for l := range vals {
				if other[l] > vals[l] {
					vals[l] = other[l]
				}
			}
		}
		result = vals
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1}, kernel); err != nil {
		t.Fatal(err)
	}
	for l, v := range result {
		if v != 30 {
			t.Fatalf("lane %d: butterfly max = %d, want 30 (broadcast to all lanes)", l, v)
		}
	}
}

func TestShufflePanicsOnFermi(t *testing.T) {
	dev := NewDevice(GTX580())
	_, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1}, func(w *Warp) {
		w.ShflXorI32(make([]int32, 32), 16)
	})
	var kp *KernelPanicError
	if !errors.As(err, &kp) {
		t.Fatalf("shfl on Fermi: err = %v, want *KernelPanicError", err)
	}
	if kp.Op != "shfl.xor" {
		t.Errorf("fault op = %q, want shfl.xor", kp.Op)
	}
}

func TestVote(t *testing.T) {
	dev := NewDevice(TeslaK40())
	var all1, all2, any1, any2 bool
	kernel := func(w *Warp) {
		tr := make([]bool, 32)
		for i := range tr {
			tr[i] = true
		}
		mixed := make([]bool, 32)
		mixed[17] = true
		all1 = w.VoteAll(tr)
		all2 = w.VoteAll(mixed)
		any1 = w.VoteAny(mixed)
		any2 = w.VoteAny(make([]bool, 32))
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1}, kernel); err != nil {
		t.Fatal(err)
	}
	if !all1 || all2 || !any1 || any2 {
		t.Errorf("vote results: %v %v %v %v", all1, all2, any1, any2)
	}
}

func TestSyncPanicsOutsideCooperative(t *testing.T) {
	dev := NewDevice(TeslaK40())
	_, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 2}, func(w *Warp) { w.Sync() })
	var kp *KernelPanicError
	if !errors.As(err, &kp) {
		t.Fatalf("Sync in non-cooperative launch: err = %v, want *KernelPanicError", err)
	}
	if kp.Op != "__syncthreads" {
		t.Errorf("fault op = %q, want __syncthreads", kp.Op)
	}
}

func TestCooperativeBarrierOrdersWrites(t *testing.T) {
	dev := NewDevice(TeslaK40())
	// Warp 0 writes, everyone syncs, warp 1 reads: must see the data,
	// and with races detection on, no race may be reported.
	var seen uint8
	kernel := func(w *Warp) {
		addrs := make([]int, 32)
		for l := range addrs {
			addrs[l] = l
		}
		if w.WarpInBlock == 0 {
			vals := make([]uint8, 32)
			for l := range vals {
				vals[l] = 42
			}
			w.SharedStoreU8(addrs, vals)
		}
		w.Sync()
		if w.WarpInBlock == 1 {
			seen = w.SharedLoadU8(addrs)[5]
		}
	}
	rep, err := dev.Launch(LaunchConfig{
		Blocks: 1, WarpsPerBlock: 2, SharedBytesPerBlock: 64,
		Cooperative: true, DetectRaces: true,
	}, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if seen != 42 {
		t.Errorf("warp 1 read %d, want 42", seen)
	}
	if rep.Stats.SharedRaces != 0 {
		t.Errorf("synchronised access reported %d races", rep.Stats.SharedRaces)
	}
	if rep.Stats.Syncs != 2 {
		t.Errorf("Syncs = %d, want 2", rep.Stats.Syncs)
	}
}

func TestRaceDetectionFlagsUnsyncedAccess(t *testing.T) {
	dev := NewDevice(TeslaK40())
	// Two warps write the same shared word with no barrier — the
	// hazard of Figure 4 when the synchronisation calls are omitted.
	kernel := func(w *Warp) {
		addrs := make([]int, 32)
		for l := range addrs {
			addrs[l] = l
		}
		w.SharedStoreU8(addrs, make([]uint8, 32))
	}
	rep, err := dev.Launch(LaunchConfig{
		Blocks: 1, WarpsPerBlock: 2, SharedBytesPerBlock: 64,
		Cooperative: true, DetectRaces: true,
	}, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.SharedRaces == 0 {
		t.Error("unsynchronised cross-warp writes were not flagged")
	}
}

func TestAllocGlobalAligned(t *testing.T) {
	dev := NewDevice(TeslaK40())
	a := dev.AllocGlobal(100)
	b := dev.AllocGlobal(100)
	if a%128 != 0 || b%128 != 0 || b <= a {
		t.Errorf("allocations a=%d b=%d", a, b)
	}
}

func TestSystemLaunchAll(t *testing.T) {
	sys := NewSystem(GTX580(), 4)
	if len(sys.Devices) != 4 {
		t.Fatalf("devices = %d", len(sys.Devices))
	}
	var ran int32
	reports, err := sys.LaunchAll(func(i int, dev *Device) (*LaunchReport, error) {
		atomic.AddInt32(&ran, 1)
		return dev.Launch(LaunchConfig{Blocks: 2, WarpsPerBlock: 2}, func(w *Warp) {
			w.ALU(int(5 * (i + 1)))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 4 || len(reports) != 4 {
		t.Fatalf("ran=%d reports=%d", ran, len(reports))
	}
	for i, rep := range reports {
		want := int64(4 * 5 * (i + 1))
		if rep.Stats.ALUOps != want {
			t.Errorf("device %d: ALUOps = %d, want %d", i, rep.Stats.ALUOps, want)
		}
	}
}

func TestSyncStallModelling(t *testing.T) {
	dev := NewDevice(TeslaK40())
	kernel := func(w *Warp) {
		// Warp 1 does 100 extra cycles of work before the barrier;
		// warp 0 should be charged ~100 stall cycles.
		if w.WarpInBlock == 1 {
			w.ALU(100)
		}
		w.Sync()
	}
	rep, err := dev.Launch(LaunchConfig{
		Blocks: 1, WarpsPerBlock: 2, SharedBytesPerBlock: 64, Cooperative: true,
	}, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.SyncStallCycles != 100 {
		t.Errorf("SyncStallCycles = %d, want 100", rep.Stats.SyncStallCycles)
	}
}

func TestOccupancyRegisterAllocationGranularity(t *testing.T) {
	// 33 regs/thread on Kepler: 33*32 = 1056 regs/warp rounds up to
	// 1280 with the 256-register allocation unit, so 4-warp blocks cost
	// 5120 regs -> 12 blocks by registers (48 warps), not 15.
	k40 := TeslaK40()
	occ := k40.CalcOccupancy(KernelResources{RegsPerThread: 33, ThreadsPerBlock: 128})
	if occ.BlocksPerSM != 12 || occ.WarpsPerSM != 48 {
		t.Errorf("granularity: got %d blocks / %d warps, want 12 / 48", occ.BlocksPerSM, occ.WarpsPerSM)
	}
}

func TestShflUpInto(t *testing.T) {
	dev := NewDevice(TeslaK40())
	var got [32]int32
	kernel := func(w *Warp) {
		src := make([]int32, 32)
		dst := make([]int32, 32)
		for l := range src {
			src[l] = int32(l * 10)
		}
		w.ShflUpI32Into(dst, src, 3)
		copy(got[:], dst)
	}
	if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1}, kernel); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 32; l++ {
		want := int32(l * 10)
		if l >= 3 {
			want = int32((l - 3) * 10)
		}
		if got[l] != want {
			t.Fatalf("lane %d: %d, want %d", l, got[l], want)
		}
	}
}

func TestStringers(t *testing.T) {
	var st KernelStats
	st.ALUOps = 5
	if got := st.String(); !contains(got, "alu=5") {
		t.Errorf("KernelStats.String() = %q", got)
	}
	occ := Occupancy{BlocksPerSM: 2, WarpsPerSM: 64, Fraction: 1, Limiter: "warps"}
	if got := occ.String(); !contains(got, "100%") || !contains(got, "warps-limited") {
		t.Errorf("Occupancy.String() = %q", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLaneUtilizationAccounting(t *testing.T) {
	dev := NewDevice(TeslaK40())
	kernel := func(w *Warp) {
		addrs := make([]int, 32)
		// Full warp access.
		for l := range addrs {
			addrs[l] = l
		}
		w.SharedLoadU8(addrs)
		// Quarter-active access.
		for l := range addrs {
			if l < 8 {
				addrs[l] = l
			} else {
				addrs[l] = -1
			}
		}
		w.SharedLoadU8(addrs)
	}
	rep, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 64}, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.TotalLaneSlots != 64 || rep.Stats.ActiveLaneSlots != 40 {
		t.Errorf("lane slots %d/%d, want 40/64", rep.Stats.ActiveLaneSlots, rep.Stats.TotalLaneSlots)
	}
	if got := rep.Stats.LaneUtilization(); got != 40.0/64 {
		t.Errorf("utilisation %g", got)
	}
	var empty KernelStats
	if empty.LaneUtilization() != 1 {
		t.Error("empty stats should report full utilisation")
	}
}
