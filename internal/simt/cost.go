package simt

// CostModel is the optional-cost seam between kernel execution and
// microarchitectural accounting, extending the obs package's
// nil-receiver philosophy: a warp with a nil CostModel performs the
// same data movement through the same fault and race machinery but
// records nothing and allocates nothing, so functional runs pay zero
// accounting cost. Device.Launch installs the model per launch from
// Device.Mode; every Warp operation consults it behind a nil check.
type CostModel interface {
	// ALU accounts n arithmetic warp instructions.
	ALU(w *Warp, n int)
	// SharedAccess accounts one generic per-lane shared-memory access
	// (gather or scatter; addrs are byte addresses, negative entries
	// mark inactive lanes) including bank-conflict replays.
	SharedAccess(w *Warp, sm *SharedMem, addrs []int, store bool)
	// SharedSpan accounts a contiguous shared access of `active`
	// consecutive cells: at most `banks` consecutive words, which map
	// to pairwise-distinct banks — conflict-free by construction.
	SharedSpan(w *Warp, active int, store bool)
	// SharedBroadcast accounts an all-lanes-same-word shared read
	// (hardware broadcast: one conflict-free access).
	SharedBroadcast(w *Warp)
	// GlobalAccess accounts one generic per-lane global access of
	// width bytes per lane, counting 128-byte coalesced transactions.
	GlobalAccess(w *Warp, addrs []int64, width int, cached, store bool)
	// GlobalSpan accounts a fully-coalesced global access: `active`
	// lanes covering [base, base+active*width).
	GlobalSpan(w *Warp, base int64, width, active int, cached, store bool)
	// GlobalBroadcast accounts an all-lanes-same-address global read.
	GlobalBroadcast(w *Warp, addr int64, width int, cached bool)
	// Shuffle and Vote account one warp-wide exchange / vote
	// instruction.
	Shuffle(w *Warp)
	Vote(w *Warp)
	// Sync accounts the barrier instruction itself (stall cycles are
	// added by Warp.Sync from the block maximum).
	Sync(w *Warp)
}

// cycleModel is the cycle-accurate CostModel: the accounting that was
// historically inlined in every Warp operation.
type cycleModel struct{}

func (cycleModel) ALU(w *Warp, n int) {
	w.stats.ALUOps += int64(n)
	w.addCycles(int64(n))
}

func (cycleModel) SharedAccess(w *Warp, sm *SharedMem, addrs []int, store bool) {
	d := sm.conflictDegree(addrs)
	w.noteLanes(addrs)
	if store {
		w.stats.SharedStores += int64(d)
	} else {
		w.stats.SharedLoads += int64(d)
	}
	w.stats.BankConflictReplays += int64(d - 1)
	w.addCycles(int64(d))
}

func (cycleModel) SharedSpan(w *Warp, active int, store bool) {
	w.stats.TotalLaneSlots += int64(w.dev.Spec.WarpSize)
	w.stats.ActiveLaneSlots += int64(active)
	if store {
		w.stats.SharedStores++
	} else {
		w.stats.SharedLoads++
	}
	w.addCycles(1)
}

func (cycleModel) SharedBroadcast(w *Warp) {
	lanes := int64(w.dev.Spec.WarpSize)
	w.stats.TotalLaneSlots += lanes
	w.stats.ActiveLaneSlots += lanes
	w.stats.SharedLoads++
	w.addCycles(1)
}

func (cycleModel) GlobalAccess(w *Warp, addrs []int64, width int, cached, store bool) {
	t := int64(coalescedTransactions(addrs, width))
	before := w.stats.ActiveLaneSlots
	w.noteLanes64(addrs)
	w.stats.GlobalRequestedBytes += (w.stats.ActiveLaneSlots - before) * int64(width)
	globalCharge(w, t, cached, store)
}

func (cycleModel) GlobalSpan(w *Warp, base int64, width, active int, cached, store bool) {
	w.stats.TotalLaneSlots += int64(w.dev.Spec.WarpSize)
	w.stats.ActiveLaneSlots += int64(active)
	w.stats.GlobalRequestedBytes += int64(active * width)
	// Distinct 128-byte segments touched by [base, base+active*width).
	t := (base+int64(active*width)-1)>>7 - base>>7 + 1
	globalCharge(w, t, cached, store)
}

func (cycleModel) GlobalBroadcast(w *Warp, addr int64, width int, cached bool) {
	lanes := int64(w.dev.Spec.WarpSize)
	w.stats.TotalLaneSlots += lanes
	w.stats.ActiveLaneSlots += lanes
	w.stats.GlobalRequestedBytes += int64(width)
	t := (addr+int64(width)-1)>>7 - addr>>7 + 1
	globalCharge(w, t, cached, false)
}

func globalCharge(w *Warp, t int64, cached, store bool) {
	switch {
	case cached && store:
		w.stats.CachedStoreTransactions += t
		w.stats.CachedBytes += t * 128
	case cached:
		w.stats.CachedLoadTransactions += t
		w.stats.CachedBytes += t * 128
	case store:
		w.stats.GlobalStoreTransactions += t
		w.stats.GlobalBytes += t * 128
	default:
		w.stats.GlobalLoadTransactions += t
		w.stats.GlobalBytes += t * 128
	}
	w.addCycles(t)
}

func (cycleModel) Shuffle(w *Warp) {
	w.stats.ShuffleOps++
	w.addCycles(1)
}

func (cycleModel) Vote(w *Warp) {
	w.stats.VoteOps++
	w.addCycles(1)
}

func (cycleModel) Sync(w *Warp) {
	w.stats.Syncs++
}
