package simt

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hmmer3gpu/internal/obs"
)

// TestKernelStatsAddCoversEveryField sets each field of the addend to
// a distinct value and checks Add propagated all of them — the drift
// that would otherwise silently drop a new counter from aggregation.
func TestKernelStatsAddCoversEveryField(t *testing.T) {
	var base, other KernelStats
	ov := reflect.ValueOf(&other).Elem()
	for i := 0; i < ov.NumField(); i++ {
		if ov.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("KernelStats.%s is %s; the aggregation contract assumes int64 counters",
				ov.Type().Field(i).Name, ov.Field(i).Kind())
		}
		ov.Field(i).SetInt(int64(1000 + i))
	}

	base.Add(&other)
	base.Add(&other)
	bv := reflect.ValueOf(base)
	for i := 0; i < bv.NumField(); i++ {
		want := 2 * int64(1000+i)
		if got := bv.Field(i).Int(); got != want {
			t.Errorf("Add dropped KernelStats.%s: got %d after two adds, want %d",
				bv.Type().Field(i).Name, got, want)
		}
	}
}

// TestKernelStatsStringCoversEveryField flips each field individually
// and requires the rendering to change, so String cannot omit a
// counter.
func TestKernelStatsStringCoversEveryField(t *testing.T) {
	zero := (&KernelStats{}).String()
	typ := reflect.TypeOf(KernelStats{})
	for i := 0; i < typ.NumField(); i++ {
		var s KernelStats
		reflect.ValueOf(&s).Elem().Field(i).SetInt(987654321)
		if s.String() == zero {
			t.Errorf("String does not render KernelStats.%s", typ.Field(i).Name)
		}
	}
}

// TestKernelStatsRecordCoversEveryField checks the reflective metrics
// adapter emits one simt counter per struct field, named in
// snake_case.
func TestKernelStatsRecordCoversEveryField(t *testing.T) {
	s := KernelStats{}
	sv := reflect.ValueOf(&s).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetInt(int64(10 + i))
	}
	reg := obs.NewRegistry()
	s.Record(reg)

	wantNames := map[string]string{
		"ALUOps":              "hmmer_simt_alu_ops_total",
		"WarpsExecuted":       "hmmer_simt_warps_executed_total",
		"BankConflictReplays": "hmmer_simt_bank_conflict_replays_total",
	}
	for i := 0; i < sv.NumField(); i++ {
		field := sv.Type().Field(i).Name
		name := "hmmer_simt_" + SnakeCase(field) + "_total"
		if want, ok := wantNames[field]; ok && name != want {
			t.Errorf("SnakeCase(%s) produced %q, want %q", field, name, want)
		}
		got, ok := reg.Get(name)
		if !ok {
			t.Errorf("Record dropped KernelStats.%s (no series %s)", field, name)
			continue
		}
		if got != float64(10+i) {
			t.Errorf("series %s = %g, want %d", name, got, 10+i)
		}
	}
	if util, ok := reg.Get("hmmer_simt_lane_utilization"); !ok {
		t.Error("Record did not gauge lane utilization")
	} else if want := float64(10+fieldIndex(t, "ActiveLaneSlots")) / float64(10+fieldIndex(t, "TotalLaneSlots")); util != want {
		t.Errorf("lane utilization gauge = %g, want %g", util, want)
	}
}

func fieldIndex(t *testing.T, name string) int {
	f, ok := reflect.TypeOf(KernelStats{}).FieldByName(name)
	if !ok {
		t.Fatalf("KernelStats has no field %s", name)
	}
	return f.Index[0]
}

// TestLaunchEmitsKernelSpan checks a traced launch produces a span on
// the device track, parented under the caller's span and annotated
// with the launch geometry.
func TestLaunchEmitsKernelSpan(t *testing.T) {
	tr := obs.New()
	root := tr.Start("host", "search")

	dev := NewDevice(GTX580())
	dev.Label = "device7"
	_, err := dev.Launch(LaunchConfig{
		Blocks: 2, WarpsPerBlock: 2, Name: "msv", Trace: root,
	}, func(w *Warp) {})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (search + kernel)", len(spans))
	}
	var kernel *obs.SpanRecord
	for i := range spans {
		if spans[i].Name == "kernel:msv" {
			kernel = &spans[i]
		}
	}
	if kernel == nil {
		t.Fatalf("no kernel:msv span in %v", spanNames(spans))
	}
	if kernel.Track != "device7" {
		t.Errorf("kernel span on track %q, want device7", kernel.Track)
	}
	if kernel.Parent == 0 {
		t.Error("kernel span is a root; want it parented under the search span")
	}
	attrs := make(map[string]any)
	for _, a := range kernel.Attrs {
		attrs[a.Key] = a.Value()
	}
	if attrs["blocks"] != int64(2) {
		t.Errorf("kernel span blocks attr = %v, want 2", attrs["blocks"])
	}
	if _, ok := attrs["issue_cycles"]; !ok {
		t.Error("kernel span missing issue_cycles annotation")
	}
}

func spanNames(spans []obs.SpanRecord) string {
	var names []string
	for _, s := range spans {
		names = append(names, fmt.Sprintf("%s@%s", s.Name, s.Track))
	}
	return strings.Join(names, ", ")
}
