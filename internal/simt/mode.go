package simt

import "fmt"

// Mode selects how much microarchitectural accounting a device performs
// while executing kernels.
//
// ModeCycleAccurate (the zero value, so existing callers are
// unchanged) runs the full cost model: bank conflicts, coalesced
// transaction counting, issue cycles, lane occupancy and sync stalls —
// everything the perf package needs to reproduce the paper's figures.
//
// ModeFast executes kernels functionally with a nil CostModel:
// identical data movement, fault injection, race detection and
// cancellation points — so scores, tblout files, checkpoint journals
// and DMR verdicts are byte-identical to cycle-accurate runs — but no
// per-operation accounting. Correctness-only workloads (chaos tests,
// CI, trajectory benchmarking) run several times faster.
type Mode int

const (
	ModeCycleAccurate Mode = iota
	ModeFast
)

// String returns the CLI spelling of the mode.
func (m Mode) String() string {
	if m == ModeFast {
		return "fast"
	}
	return "cycles"
}

// ParseMode parses the CLI spelling of a simulator mode
// (the -sim flag of hmmsearch and hmmbench).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "cycles", "cycle-accurate", "accurate":
		return ModeCycleAccurate, nil
	case "fast", "functional":
		return ModeFast, nil
	}
	return 0, fmt.Errorf("simt: unknown sim mode %q (want \"fast\" or \"cycles\")", s)
}
