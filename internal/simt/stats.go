package simt

import "fmt"

// KernelStats aggregates the instruction and memory traffic counters
// of one kernel launch. All counts are warp-level (one SIMT
// instruction issued for 32 lanes counts once, plus replays).
type KernelStats struct {
	// WarpsExecuted is the number of warp work-items that ran.
	WarpsExecuted int64
	// ALUOps counts arithmetic/logic warp instructions.
	ALUOps int64
	// SharedLoads and SharedStores count shared-memory warp accesses
	// including bank-conflict replays.
	SharedLoads  int64
	SharedStores int64
	// BankConflictReplays counts the excess cycles spent replaying
	// conflicting shared-memory accesses (0 for a conflict-free kernel).
	BankConflictReplays int64
	// GlobalLoadTransactions and GlobalStoreTransactions count 128-byte
	// memory transactions after coalescing.
	GlobalLoadTransactions  int64
	GlobalStoreTransactions int64
	// GlobalBytes is the total global memory traffic in bytes.
	GlobalBytes int64
	// CachedLoadTransactions/CachedStoreTransactions and CachedBytes
	// meter accesses whose working set lives in L2 (reused model
	// parameters, spilled DP rows); most of this traffic never reaches
	// DRAM.
	CachedLoadTransactions  int64
	CachedStoreTransactions int64
	CachedBytes             int64
	// GlobalRequestedBytes is the bytes the active lanes actually asked
	// for across all global accesses (cached included). Dividing by the
	// 128-byte-granular traffic actually moved gives nvprof's
	// gld_efficiency-style coalescing efficiency.
	GlobalRequestedBytes int64
	// ShuffleOps counts warp-shuffle instructions (Kepler path).
	ShuffleOps int64
	// VoteOps counts warp-vote instructions (__all / __any).
	VoteOps int64
	// Syncs counts __syncthreads barriers executed per warp.
	Syncs int64
	// SyncStallCycles models the issue cycles lost at barriers
	// (warps idle waiting for the slowest warp in the block).
	SyncStallCycles int64
	// SharedRaces counts detected cross-warp shared-memory conflicts
	// occurring between barriers (a correctness hazard, not a cost).
	SharedRaces int64
	// ActiveLaneSlots / TotalLaneSlots measure SIMT lane utilisation
	// over memory operations: ragged model sizes leave lanes idle in a
	// row's final 32-position chunk (e.g. M=33 uses 1 of 32 lanes
	// there), a divergence cost the occupancy numbers do not show.
	ActiveLaneSlots int64
	TotalLaneSlots  int64
	// IssueCycles is the summed per-warp issue-cycle estimate.
	IssueCycles int64
}

// Add accumulates other into s.
func (s *KernelStats) Add(other *KernelStats) {
	s.WarpsExecuted += other.WarpsExecuted
	s.ALUOps += other.ALUOps
	s.SharedLoads += other.SharedLoads
	s.SharedStores += other.SharedStores
	s.BankConflictReplays += other.BankConflictReplays
	s.GlobalLoadTransactions += other.GlobalLoadTransactions
	s.GlobalStoreTransactions += other.GlobalStoreTransactions
	s.GlobalBytes += other.GlobalBytes
	s.CachedLoadTransactions += other.CachedLoadTransactions
	s.CachedStoreTransactions += other.CachedStoreTransactions
	s.CachedBytes += other.CachedBytes
	s.GlobalRequestedBytes += other.GlobalRequestedBytes
	s.ShuffleOps += other.ShuffleOps
	s.VoteOps += other.VoteOps
	s.Syncs += other.Syncs
	s.SyncStallCycles += other.SyncStallCycles
	s.SharedRaces += other.SharedRaces
	s.ActiveLaneSlots += other.ActiveLaneSlots
	s.TotalLaneSlots += other.TotalLaneSlots
	s.IssueCycles += other.IssueCycles
}

// LaneUtilization returns the fraction of SIMT lane slots doing real
// work across memory operations (1.0 = perfectly full warps).
func (s *KernelStats) LaneUtilization() float64 {
	if s.TotalLaneSlots == 0 {
		return 1
	}
	return float64(s.ActiveLaneSlots) / float64(s.TotalLaneSlots)
}

// Instructions returns the total warp instructions issued.
func (s *KernelStats) Instructions() int64 {
	return s.ALUOps + s.SharedLoads + s.SharedStores +
		s.GlobalLoadTransactions + s.GlobalStoreTransactions +
		s.CachedLoadTransactions + s.CachedStoreTransactions +
		s.ShuffleOps + s.VoteOps + s.Syncs
}

// String renders the counters compactly for reports. Every field of
// the struct appears (a reflection test enforces this, so a new
// counter cannot silently drop out of the rendering).
func (s *KernelStats) String() string {
	return fmt.Sprintf(
		"warps=%d alu=%d shld=%d shst=%d bankrep=%d gld=%d gst=%d gbytes=%d cached=%d/%d cbytes=%d greq=%d shfl=%d vote=%d sync=%d stall=%d races=%d lanes=%d/%d cycles=%d",
		s.WarpsExecuted, s.ALUOps, s.SharedLoads, s.SharedStores, s.BankConflictReplays,
		s.GlobalLoadTransactions, s.GlobalStoreTransactions, s.GlobalBytes,
		s.CachedLoadTransactions, s.CachedStoreTransactions, s.CachedBytes,
		s.GlobalRequestedBytes,
		s.ShuffleOps, s.VoteOps, s.Syncs, s.SyncStallCycles, s.SharedRaces,
		s.ActiveLaneSlots, s.TotalLaneSlots, s.IssueCycles)
}
