package simt

import (
	"sync"
	"testing"
)

// captureProfiler is a minimal Profiler recording every delivery.
type captureProfiler struct {
	mu       sync.Mutex
	period   int
	profiles []*LaunchProfile
}

func (c *captureProfiler) SamplePeriod() int { return c.period }
func (c *captureProfiler) OnLaunch(p *LaunchProfile) {
	c.mu.Lock()
	c.profiles = append(c.profiles, p)
	c.mu.Unlock()
}

func profKernel(w *Warp) {
	lanes := w.Lanes()
	f := make([]float32, lanes)
	w.ALU(5)
	w.SharedSpanStoreF32(f, 0, lanes)
	w.SharedSpanLoadF32(f, 0, lanes)
	w.GlobalSpanLoad(0, 4, lanes)
	w.Vote()
}

// TestProfilerCycleModeCoversEveryBlock pins the cycle-mode contract:
// one sample per block, in block order, whose deltas sum exactly to
// the launch report's aggregate.
func TestProfilerCycleModeCoversEveryBlock(t *testing.T) {
	cp := &captureProfiler{period: 4}
	dev := NewDevice(TeslaK40())
	dev.Profiler = cp
	const blocks, wpb = 6, 2
	rep, err := dev.Launch(LaunchConfig{
		Blocks: blocks, WarpsPerBlock: wpb, SharedBytesPerBlock: 1024, Name: "msv",
	}, profKernel)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.profiles) != 1 {
		t.Fatalf("got %d profiles, want 1", len(cp.profiles))
	}
	p := cp.profiles[0]
	if p.Kernel != "msv" || p.Mode != ModeCycleAccurate || p.Blocks != blocks || p.WarpsPerBlock != wpb {
		t.Errorf("profile header wrong: %+v", p)
	}
	if p.SamplePeriod != 1 {
		t.Errorf("cycle-mode sample period = %d, want 1 (every block)", p.SamplePeriod)
	}
	if len(p.Samples) != blocks {
		t.Fatalf("got %d samples, want %d", len(p.Samples), blocks)
	}
	var sum KernelStats
	for i, s := range p.Samples {
		if s.Block != i {
			t.Errorf("sample %d is for block %d, want ascending block order", i, s.Block)
		}
		if s.Stats.WarpsExecuted != wpb {
			t.Errorf("block %d warps = %d, want %d", s.Block, s.Stats.WarpsExecuted, wpb)
		}
		sum.Add(&s.Stats)
	}
	if sum != rep.Stats {
		t.Errorf("per-block deltas do not partition the aggregate:\n  sum: %v\n  rep: %v", &sum, &rep.Stats)
	}
	if p.Occupancy != rep.Occupancy {
		t.Errorf("profile occupancy %+v != report occupancy %+v", p.Occupancy, rep.Occupancy)
	}
}

// TestProfilerFastModeSamples pins fast-mode sampling: every Nth block
// carries real cycle counters, results stay functional, and the
// report aggregate contains exactly the sampled blocks' accounting.
func TestProfilerFastModeSamples(t *testing.T) {
	cp := &captureProfiler{period: 4}
	dev := NewDevice(TeslaK40())
	dev.Mode = ModeFast
	dev.Profiler = cp
	const blocks, wpb = 10, 2
	rep, err := dev.Launch(LaunchConfig{
		Blocks: blocks, WarpsPerBlock: wpb, SharedBytesPerBlock: 1024, Name: "msv",
	}, profKernel)
	if err != nil {
		t.Fatal(err)
	}
	p := cp.profiles[0]
	if p.SamplePeriod != 4 {
		t.Errorf("sample period = %d, want 4", p.SamplePeriod)
	}
	wantBlocks := []int{0, 4, 8}
	if len(p.Samples) != len(wantBlocks) {
		t.Fatalf("got %d samples, want %d", len(p.Samples), len(wantBlocks))
	}
	var sum KernelStats
	for i, s := range p.Samples {
		if s.Block != wantBlocks[i] {
			t.Errorf("sample %d is block %d, want %d", i, s.Block, wantBlocks[i])
		}
		if s.Stats.IssueCycles == 0 || s.Stats.ALUOps == 0 {
			t.Errorf("sampled block %d has no cycle accounting: %v", s.Block, &s.Stats)
		}
		sum.Add(&s.Stats)
	}
	// The aggregate = sampled accounting + one WarpsExecuted per
	// unsampled warp.
	want := sum
	want.WarpsExecuted = blocks * wpb
	if rep.Stats != want {
		t.Errorf("fast+profiled aggregate:\n  got  %v\n  want %v", &rep.Stats, &want)
	}
}

// TestProfilerSamplePeriodFloor: a period below 1 profiles every
// block in fast mode rather than dividing by zero.
func TestProfilerSamplePeriodFloor(t *testing.T) {
	cp := &captureProfiler{period: 0}
	dev := NewDevice(TeslaK40())
	dev.Mode = ModeFast
	dev.Profiler = cp
	_, err := dev.Launch(LaunchConfig{Blocks: 3, WarpsPerBlock: 1, SharedBytesPerBlock: 1024}, profKernel)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cp.profiles[0].Samples); got != 3 {
		t.Errorf("period 0: %d samples, want 3 (every block)", got)
	}
}

// TestProfilerNotCalledOnFailedLaunch: a launch that panics delivers
// no profile.
func TestProfilerNotCalledOnFailedLaunch(t *testing.T) {
	cp := &captureProfiler{period: 1}
	dev := NewDevice(TeslaK40())
	dev.Profiler = cp
	_, err := dev.Launch(LaunchConfig{Blocks: 2, WarpsPerBlock: 1, SharedBytesPerBlock: 64},
		func(w *Warp) { panic("boom") })
	if err == nil {
		t.Fatal("want panic error")
	}
	if len(cp.profiles) != 0 {
		t.Errorf("failed launch delivered %d profiles, want 0", len(cp.profiles))
	}
}

// TestDisabledProfilingFastModeUnchanged pins that a nil Profiler
// leaves the fast-mode contract exactly as before: stats are
// WarpsExecuted only.
func TestDisabledProfilingFastModeUnchanged(t *testing.T) {
	dev := NewDevice(TeslaK40())
	dev.Mode = ModeFast
	const blocks, wpb = 4, 2
	rep, err := dev.Launch(LaunchConfig{
		Blocks: blocks, WarpsPerBlock: wpb, SharedBytesPerBlock: 1024,
	}, profKernel)
	if err != nil {
		t.Fatal(err)
	}
	want := KernelStats{WarpsExecuted: blocks * wpb}
	if rep.Stats != want {
		t.Errorf("stats = %v, want %v", &rep.Stats, &want)
	}
}

// launchAllocs measures allocations per fast-mode launch on a
// single-worker device with no profiler attached.
func launchAllocs(t *testing.T, blocks int) float64 {
	t.Helper()
	dev := NewDevice(TeslaK40())
	dev.Mode = ModeFast
	cfg := LaunchConfig{Blocks: blocks, WarpsPerBlock: 2, SharedBytesPerBlock: 256, HostWorkers: 1}
	kernel := func(w *Warp) {
		w.ALU(1)
		w.SharedSpanTouch(0, 4, w.Lanes(), false)
	}
	return testing.AllocsPerRun(20, func() {
		if _, err := dev.Launch(cfg, kernel); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDisabledProfilingAddsNoPerBlockAllocations proves the nil-
// Profiler path allocates nothing per block: growing the grid 16×
// must not grow the per-launch allocation count (the fixed per-launch
// overhead is worker contexts, not block work).
func TestDisabledProfilingAddsNoPerBlockAllocations(t *testing.T) {
	small := launchAllocs(t, 2)
	large := launchAllocs(t, 32)
	if large > small {
		t.Errorf("allocations grew with block count: %g for 2 blocks vs %g for 32 — the disabled-profiler block path must be allocation-free", small, large)
	}
}

func benchLaunch(b *testing.B, prof Profiler) {
	dev := NewDevice(TeslaK40())
	dev.Mode = ModeFast
	dev.Profiler = prof
	cfg := LaunchConfig{Blocks: 30, WarpsPerBlock: 4, SharedBytesPerBlock: 1024, HostWorkers: 1}
	kernel := func(w *Warp) {
		lanes := w.Lanes()
		f := make([]float32, lanes)
		for i := 0; i < 64; i++ {
			w.ALU(3)
			w.SharedSpanStoreF32(f, 0, lanes)
			w.SharedSpanLoadF32(f, 0, lanes)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch(cfg, kernel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastLaunchProfilerOff / ...On bound the cost of the
// profiling seam on the fast path; Off is the number the bench
// trajectory gate watches indirectly.
func BenchmarkFastLaunchProfilerOff(b *testing.B) { benchLaunch(b, nil) }
func BenchmarkFastLaunchProfilerOn(b *testing.B) {
	benchLaunch(b, &captureProfiler{period: 8})
}
