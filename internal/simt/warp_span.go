package simt

import "math"

// Span operations: the warp access patterns the paper's kernels
// actually use — `active` lanes touching consecutive cells — expressed
// as contiguous slice transfers instead of per-lane address gathers.
// A span of at most 32 cells of width <= 4 covers at most `banks`
// consecutive words, which map to pairwise-distinct banks, so the
// access is conflict-free by construction and its cost is computed
// analytically (CostModel.SharedSpan / GlobalSpan) rather than by
// scanning an address vector. The data paths are tight loops over
// adjacent bytes that the compiler can bounds-check-eliminate and keep
// in cache; accounting, fault overlays and race tracking are
// bit-identical to the equivalent gather/scatter call with addresses
// base + lane*width (inactive tail lanes negative).

// SharedSpanLoadU8 loads the n consecutive shared bytes at
// [base, base+n) into dst[0:n]; lane l reads byte base+l.
func (w *Warp) SharedSpanLoadU8(dst []uint8, base, n int) {
	if n <= 0 {
		return
	}
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedSpan(w, n, false)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), base, n, false)
	}
	if sm.faults == nil {
		copy(dst[:n], sm.data[base:base+n])
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = sm.at(base + i)
	}
}

// SharedSpanStoreU8 stores src[0:n] to the consecutive shared bytes at
// [base, base+n); lane l writes byte base+l.
func (w *Warp) SharedSpanStoreU8(src []uint8, base, n int) {
	if n <= 0 {
		return
	}
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedSpan(w, n, true)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), base, n, true)
	}
	copy(sm.data[base:base+n], src[:n])
}

// SharedSpanLoadI16 loads n consecutive 16-bit cells starting at byte
// offset base (2-aligned) into dst[0:n]; lane l reads cell base+2*l.
func (w *Warp) SharedSpanLoadI16(dst []int16, base, n int) {
	if n <= 0 {
		return
	}
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedSpan(w, n, false)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), base, 2*n, false)
	}
	if sm.faults == nil {
		src := sm.data[base : base+2*n : base+2*n]
		for i := 0; i < n; i++ {
			dst[i] = int16(uint16(src[2*i]) | uint16(src[2*i+1])<<8)
		}
		return
	}
	for i := 0; i < n; i++ {
		a := base + 2*i
		dst[i] = int16(uint16(sm.at(a)) | uint16(sm.at(a+1))<<8)
	}
}

// SharedSpanStoreI16 stores src[0:n] to n consecutive 16-bit cells
// starting at byte offset base.
func (w *Warp) SharedSpanStoreI16(src []int16, base, n int) {
	if n <= 0 {
		return
	}
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedSpan(w, n, true)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), base, 2*n, true)
	}
	dst := sm.data[base : base+2*n : base+2*n]
	for i := 0; i < n; i++ {
		v := uint16(src[i])
		dst[2*i] = byte(v)
		dst[2*i+1] = byte(v >> 8)
	}
}

// SharedSpanLoadF32 loads n consecutive float32 cells starting at byte
// offset base (4-aligned) into dst[0:n].
func (w *Warp) SharedSpanLoadF32(dst []float32, base, n int) {
	if n <= 0 {
		return
	}
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedSpan(w, n, false)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), base, 4*n, false)
	}
	if sm.faults == nil {
		src := sm.data[base : base+4*n : base+4*n]
		for i := 0; i < n; i++ {
			bits := uint32(src[4*i]) | uint32(src[4*i+1])<<8 |
				uint32(src[4*i+2])<<16 | uint32(src[4*i+3])<<24
			dst[i] = math.Float32frombits(bits)
		}
		return
	}
	for i := 0; i < n; i++ {
		a := base + 4*i
		bits := uint32(sm.at(a)) | uint32(sm.at(a+1))<<8 |
			uint32(sm.at(a+2))<<16 | uint32(sm.at(a+3))<<24
		dst[i] = math.Float32frombits(bits)
	}
}

// SharedSpanStoreF32 stores src[0:n] to n consecutive float32 cells
// starting at byte offset base.
func (w *Warp) SharedSpanStoreF32(src []float32, base, n int) {
	if n <= 0 {
		return
	}
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedSpan(w, n, true)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), base, 4*n, true)
	}
	dst := sm.data[base : base+4*n : base+4*n]
	for i := 0; i < n; i++ {
		bits := math.Float32bits(src[i])
		dst[4*i] = byte(bits)
		dst[4*i+1] = byte(bits >> 8)
		dst[4*i+2] = byte(bits >> 16)
		dst[4*i+3] = byte(bits >> 24)
	}
}

// SharedSpanTouch meters a contiguous shared span access — n cells of
// the given byte width, load or store — without moving any data. It is
// the op for model-table reads whose values the kernel sources from
// host memory: the table is never materialised in the block's shared
// storage, so there is nothing to read, but the traffic must still be
// accounted (and race-tracked) exactly like the SharedSpanLoad/Store
// of the same shape. Reads have no side effects through the fault
// overlay, so skipping the byte loop is invisible to results.
func (w *Warp) SharedSpanTouch(base, width, n int, store bool) {
	if n <= 0 {
		return
	}
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	// Keep the load/store ops' out-of-bounds failure mode.
	_ = sm.data[base+width*n-1]
	if w.cost != nil {
		w.cost.SharedSpan(w, n, store)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), base, width*n, store)
	}
}

// SharedBroadcastU8 reads one shared byte that every lane consumes: a
// same-word hardware broadcast, one conflict-free access with all
// lanes active.
func (w *Warp) SharedBroadcastU8(addr int) uint8 {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedBroadcast(w)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), addr, 1, false)
	}
	return sm.at(addr)
}

// SharedBroadcastI16 is the 16-bit same-word broadcast read.
func (w *Warp) SharedBroadcastI16(addr int) int16 {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedBroadcast(w)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), addr, 2, false)
	}
	return int16(uint16(sm.at(addr)) | uint16(sm.at(addr+1))<<8)
}

// SharedBroadcastF32 is the float32 same-word broadcast read.
func (w *Warp) SharedBroadcastF32(addr int) float32 {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedBroadcast(w)
	}
	if sm.trackRaces {
		sm.noteSpan(int32(w.WarpInBlock), addr, 4, false)
	}
	bits := uint32(sm.at(addr)) | uint32(sm.at(addr+1))<<8 |
		uint32(sm.at(addr+2))<<16 | uint32(sm.at(addr+3))<<24
	return math.Float32frombits(bits)
}

// GlobalSpanLoad meters a fully-coalesced warp read: `active` lanes
// reading width bytes each from consecutive addresses starting at
// base (lane l reads base + l*width; tail lanes inactive). Like
// GlobalLoad, only the traffic is metered — data lives in host
// buffers.
func (w *Warp) GlobalSpanLoad(base int64, width, active int) {
	if active <= 0 {
		return
	}
	if w.cost != nil {
		w.cost.GlobalSpan(w, base, width, active, false, false)
	}
}

// GlobalSpanLoadCached is GlobalSpanLoad through the read-only data
// cache path.
func (w *Warp) GlobalSpanLoadCached(base int64, width, active int) {
	if active <= 0 {
		return
	}
	if w.cost != nil {
		w.cost.GlobalSpan(w, base, width, active, true, false)
	}
}

// GlobalSpanStore meters a fully-coalesced warp write.
func (w *Warp) GlobalSpanStore(base int64, width, active int) {
	if active <= 0 {
		return
	}
	if w.cost != nil {
		w.cost.GlobalSpan(w, base, width, active, false, true)
	}
}

// GlobalSpanStoreCached meters a coalesced write that stays in L2.
func (w *Warp) GlobalSpanStoreCached(base int64, width, active int) {
	if active <= 0 {
		return
	}
	if w.cost != nil {
		w.cost.GlobalSpan(w, base, width, active, true, true)
	}
}

// GlobalBroadcastLoad meters an all-lanes-same-address global read of
// width bytes (the packed-residue word fetch: one transaction,
// hardware broadcast).
func (w *Warp) GlobalBroadcastLoad(addr int64, width int) {
	if w.cost != nil {
		w.cost.GlobalBroadcast(w, addr, width, false)
	}
}
