package simt

import (
	"fmt"
	"sync"
)

// System is a multi-GPU host: the paper's 4x GTX 580 configuration is
// a System of four Fermi devices with the sequence database partitioned
// across them ("the processing of the sequence database can be easily
// parallelized across multiple devices without any dependencies").
type System struct {
	Devices []*Device
}

// NewSystem creates n identical devices.
func NewSystem(spec DeviceSpec, n int) *System {
	sys := &System{}
	for i := 0; i < n; i++ {
		dev := NewDevice(spec)
		dev.Label = fmt.Sprintf("device%d", i)
		sys.Devices = append(sys.Devices, dev)
	}
	return sys
}

// SetMode sets the simulation mode on every device and returns the
// system for chaining.
func (sys *System) SetMode(m Mode) *System {
	for _, dev := range sys.Devices {
		dev.Mode = m
	}
	return sys
}

// ApplyFaults attaches one injector per device index (the map
// ParseFaults returns); an index beyond the system's devices is an
// error.
func (sys *System) ApplyFaults(faults map[int]*FaultInjector) error {
	for i, inj := range faults {
		if i < 0 || i >= len(sys.Devices) {
			return fmt.Errorf("simt: fault spec names device %d, system has %d devices", i, len(sys.Devices))
		}
		sys.Devices[i].Faults = inj
	}
	return nil
}

// LaunchAll runs one launch per device concurrently; launch(i, dev)
// must submit device i's share of the work and return its report.
// Reports come back indexed by device. The first error wins.
func (sys *System) LaunchAll(launch func(i int, dev *Device) (*LaunchReport, error)) ([]*LaunchReport, error) {
	reports := make([]*LaunchReport, len(sys.Devices))
	errs := make([]error, len(sys.Devices))
	var wg sync.WaitGroup
	wg.Add(len(sys.Devices))
	for i, dev := range sys.Devices {
		go func(i int, dev *Device) {
			defer wg.Done()
			reports[i], errs[i] = launch(i, dev)
		}(i, dev)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// SetProfiler attaches one Profiler to every device and returns the
// system for chaining; a nil argument detaches profiling everywhere.
func (sys *System) SetProfiler(p Profiler) *System {
	for _, dev := range sys.Devices {
		dev.Profiler = p
	}
	return sys
}
