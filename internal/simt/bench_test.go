package simt

import "testing"

// BenchmarkLaunchOverhead measures the host cost of an (almost) empty
// launch — the fixed per-launch work the perf model's overhead
// constant stands for.
func BenchmarkLaunchOverhead(b *testing.B) {
	dev := NewDevice(TeslaK40())
	nop := func(w *Warp) { w.ALU(1) }
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch(LaunchConfig{Blocks: 30, WarpsPerBlock: 4}, nop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedAccess measures the simulator's per-warp-access cost,
// the dominant term in kernel simulation throughput.
func BenchmarkSharedAccess(b *testing.B) {
	dev := NewDevice(TeslaK40())
	kernel := func(w *Warp) {
		addrs := make([]int, 32)
		vals := make([]uint8, 32)
		for l := range addrs {
			addrs[l] = l
		}
		for i := 0; i < 1000; i++ {
			w.SharedStoreU8(addrs, vals)
			w.SharedLoadU8Into(vals, addrs)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 64}, kernel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOccupancyCalc measures the planner's core primitive.
func BenchmarkOccupancyCalc(b *testing.B) {
	spec := TeslaK40()
	r := KernelResources{RegsPerThread: 64, SharedPerBlock: 12345, ThreadsPerBlock: 128}
	for i := 0; i < b.N; i++ {
		spec.CalcOccupancy(r)
	}
}
