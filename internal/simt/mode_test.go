package simt

import "testing"

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"cycles", ModeCycleAccurate, false},
		{"cycle-accurate", ModeCycleAccurate, false},
		{"accurate", ModeCycleAccurate, false},
		{"fast", ModeFast, false},
		{"functional", ModeFast, false},
		{"", 0, true},
		{"FAST", 0, true},
		{"turbo", 0, true},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseMode(%q) error = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if ModeCycleAccurate.String() != "cycles" || ModeFast.String() != "fast" {
		t.Errorf("String(): got %q/%q, want cycles/fast",
			ModeCycleAccurate, ModeFast)
	}
}

// TestFastModeRecordsNothing pins the nil-CostModel contract: a fast
// launch that exercises every metered operation class reports stats
// equal to the zero KernelStats apart from WarpsExecuted — no cycles,
// no transactions, no lane occupancy.
func TestFastModeRecordsNothing(t *testing.T) {
	dev := NewDevice(TeslaK40())
	dev.Mode = ModeFast
	const blocks, wpb = 4, 2
	kernel := func(w *Warp) {
		lanes := w.Lanes()
		f := make([]float32, lanes)
		i16 := make([]int16, lanes)
		u8 := make([]uint8, lanes)
		addrs64 := make([]int64, lanes)
		for l := range addrs64 {
			addrs64[l] = int64(4 * l)
		}
		w.ALU(7)
		w.SharedSpanStoreF32(f, 0, lanes)
		w.SharedSpanLoadF32(f, 0, lanes)
		w.SharedSpanStoreI16(i16, 0, lanes)
		w.SharedSpanLoadI16(i16, 0, lanes)
		w.SharedSpanStoreU8(u8, 0, lanes)
		w.SharedSpanLoadU8(u8, 0, lanes)
		w.SharedSpanTouch(0, 4, lanes, false)
		w.SharedBroadcastF32(0)
		w.GlobalLoad(addrs64, 4)
		w.GlobalSpanLoadCached(0, 4, lanes)
		w.GlobalSpanStore(0, 8, 1)
		w.GlobalBroadcastLoad(0, 4)
		w.ShflXorF32Into(f, f, 1)
		w.Vote()
		w.VoteAll(make([]bool, lanes))
	}
	rep, err := dev.Launch(LaunchConfig{
		Blocks: blocks, WarpsPerBlock: wpb, SharedBytesPerBlock: 1024,
	}, kernel)
	if err != nil {
		t.Fatal(err)
	}
	want := KernelStats{WarpsExecuted: blocks * wpb}
	if rep.Stats != want {
		t.Errorf("fast-mode stats = %+v, want %+v", rep.Stats, want)
	}
}

// TestFastModeOpsAllocateNothing asserts the fast-path ops a kernel's
// inner loop issues are allocation-free: the whole point of ModeFast
// is that per-op overhead collapses to a nil check and a slice copy.
func TestFastModeOpsAllocateNothing(t *testing.T) {
	dev := NewDevice(TeslaK40())
	dev.Mode = ModeFast
	var allocs float64
	_, err := dev.Launch(LaunchConfig{
		Blocks: 1, WarpsPerBlock: 1, SharedBytesPerBlock: 1024,
	}, func(w *Warp) {
		lanes := w.Lanes()
		f := make([]float32, lanes)
		i16 := make([]int16, lanes)
		allocs = testing.AllocsPerRun(100, func() {
			w.SharedSpanStoreF32(f, 0, lanes)
			w.SharedSpanLoadF32(f, 0, lanes)
			w.SharedSpanStoreI16(i16, 0, lanes)
			w.SharedSpanLoadI16(i16, 0, lanes)
			w.SharedSpanTouch(0, 4, lanes, false)
			w.ALU(3)
			w.Vote()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("fast-mode span ops allocate %.1f objects per iteration, want 0", allocs)
	}
}
