package simt

// Fault model of the simulated devices. At the scale the ROADMAP aims
// for (a production service saturating several devices for hours),
// device faults are routine, not exceptional: a launch that the driver
// rejects (transient), a kernel that never returns (hung), and a card
// that falls off the bus (lost). The simulator makes each of them
// deterministic and injectable so the multi-device scheduler's
// recovery paths — retry, requeue, quarantine, host fallback — can be
// tested exactly, under the race detector, with no real hardware and
// no real sleeps.
//
// The taxonomy the rest of the system keys off:
//
//   - ErrLaunchFailed — transient; retrying the launch may succeed.
//   - ErrDeviceHung   — a launch exceeded its deadline; the device
//     returned control, so it is suspect but usable (transient).
//   - ErrDeviceLost   — persistent; every subsequent launch on the
//     device fails, so callers must stop using it.
//   - KernelPanicError — a bug in the kernel itself (illegal
//     instruction, barrier misuse); deterministic, so retrying
//     anywhere reproduces it and the run must surface it as an error
//     rather than die in a goroutine panic.

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// Typed device fault causes. They are wrapped in a *FaultError carrying
// the device and launch ordinal; match with errors.Is.
var (
	// ErrLaunchFailed is a transient kernel-launch failure.
	ErrLaunchFailed = errors.New("simt: kernel launch failed")
	// ErrDeviceHung marks a launch that exceeded its deadline.
	ErrDeviceHung = errors.New("simt: launch deadline exceeded (device hung)")
	// ErrDeviceLost marks a device that has failed permanently; every
	// launch after the fault returns it again.
	ErrDeviceLost = errors.New("simt: device lost")
)

// FaultError is a device fault as surfaced by Device.Launch: the
// underlying cause (one of the Err sentinels above), where it struck,
// and whether the device is permanently gone.
type FaultError struct {
	// Device is the faulting device's track label ("device2").
	Device string
	// Ordinal is the device-local launch ordinal that faulted
	// (-1 when the fault is not tied to a counted launch).
	Ordinal int64
	// Persistent reports that the device is unusable from now on
	// (ErrDeviceLost); transient faults may succeed on retry.
	Persistent bool
	// Err is the typed cause.
	Err error
}

func (e *FaultError) Error() string {
	kind := "transient"
	if e.Persistent {
		kind = "persistent"
	}
	return fmt.Sprintf("%v (%s fault on %s, launch %d)", e.Err, kind, e.Device, e.Ordinal)
}

func (e *FaultError) Unwrap() error { return e.Err }

// IsPersistentFault reports whether err marks a device that must not
// be used again (device lost).
func IsPersistentFault(err error) bool {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe.Persistent
	}
	return errors.Is(err, ErrDeviceLost)
}

// IsTransientFault reports whether err is a device fault worth
// retrying (launch failure or hang on a device that is still present).
func IsTransientFault(err error) bool {
	var fe *FaultError
	if errors.As(err, &fe) {
		return !fe.Persistent
	}
	return errors.Is(err, ErrLaunchFailed) || errors.Is(err, ErrDeviceHung)
}

// FaultKind selects what an injected fault does to the launch.
type FaultKind int

const (
	// FaultLaunch makes the launch fail transiently (ErrLaunchFailed).
	FaultLaunch FaultKind = iota
	// FaultHang makes the launch exceed its deadline (ErrDeviceHung);
	// the device stays usable.
	FaultHang
	// FaultLost kills the device: the launch and every one after it
	// return ErrDeviceLost.
	FaultLost
)

func (k FaultKind) String() string {
	switch k {
	case FaultLaunch:
		return "launch-failed"
	case FaultHang:
		return "hang"
	case FaultLost:
		return "lost"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultInjector decides, per launch, whether a device faults. Faults
// fire on chosen launch ordinals (deterministic) or probabilistically
// from a seeded generator, so a fault schedule is reproducible:
// re-running the same device workload re-injects the same faults.
// Attach one per Device via Device.Faults; a nil injector injects
// nothing. An injector is owned by a single device.
type FaultInjector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	p        float64
	at       map[int64]FaultKind
	lostFrom int64
	launches int64
	injected int64

	// Mem, when non-nil, additionally injects silent memory
	// corruption (bit flips in shared memory and result readbacks)
	// into launches that pass fail-stop arbitration. See
	// MemFaultInjector.
	Mem *MemFaultInjector
}

// NewFaultInjector returns an injector whose probabilistic faults draw
// from a generator seeded with seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{
		rng:      rand.New(rand.NewSource(seed)),
		at:       make(map[int64]FaultKind),
		lostFrom: -1,
	}
}

// FailAt schedules a fault of the given kind on the device-local
// launch ordinal (0-based). FaultLost marks the device lost from that
// ordinal on. Returns the injector for chaining.
func (f *FaultInjector) FailAt(ordinal int64, kind FaultKind) *FaultInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	if kind == FaultLost {
		if f.lostFrom < 0 || ordinal < f.lostFrom {
			f.lostFrom = ordinal
		}
		return f
	}
	f.at[ordinal] = kind
	return f
}

// FailProb makes every launch fail transiently with probability p
// (drawn from the injector's seeded generator).
func (f *FaultInjector) FailProb(p float64) *FaultInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.p = p
	return f
}

// LoseFrom marks the device permanently lost from the given launch
// ordinal on (0 kills it immediately).
func (f *FaultInjector) LoseFrom(ordinal int64) *FaultInjector {
	return f.FailAt(ordinal, FaultLost)
}

// Launches returns how many launches the injector has arbitrated.
func (f *FaultInjector) Launches() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.launches
}

// Injected returns how many faults the injector has fired.
func (f *FaultInjector) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// memInjector returns the silent-corruption injector, creating it
// with the given seed on first use.
func (f *FaultInjector) memInjector(seed int64) *MemFaultInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.Mem == nil {
		f.Mem = NewMemFaultInjector(seed)
	}
	return f.Mem
}

// memPlan forwards to the silent-corruption injector (nil-safe); it
// is called only for launches that passed fail-stop arbitration, so
// flip@launch ordinals count executed launches and stay deterministic
// across fail-stop retries.
func (f *FaultInjector) memPlan(ecc bool, sharedBytesPerBlock, blocks int) *memFlipPlan {
	if f == nil {
		return nil
	}
	return f.Mem.memPlan(ecc, sharedBytesPerBlock, blocks)
}

// onLaunch consumes one launch ordinal and returns the fault to
// inject, or nil to let the launch proceed. device is the launching
// device's track label.
func (f *FaultInjector) onLaunch(device string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ord := f.launches
	f.launches++
	fault := func(cause error, persistent bool) error {
		f.injected++
		return &FaultError{Device: device, Ordinal: ord, Persistent: persistent, Err: cause}
	}
	if f.lostFrom >= 0 && ord >= f.lostFrom {
		return fault(ErrDeviceLost, true)
	}
	if kind, ok := f.at[ord]; ok {
		switch kind {
		case FaultHang:
			return fault(ErrDeviceHung, false)
		default:
			return fault(ErrLaunchFailed, false)
		}
	}
	if f.p > 0 && f.rng.Float64() < f.p {
		return fault(ErrLaunchFailed, false)
	}
	return nil
}

// ParseFaults parses a fault-injection spec of the form
//
//	<dev>:<fault>[,<fault>...][;<dev>:<fault>...]
//
// where <dev> is a device index and <fault> is one of
//
//	p=<prob>       probabilistic transient launch failures
//	at=<ordinal>   transient failure of that launch ordinal
//	hang=<ordinal> deadline-exceeded fault at that ordinal
//	dead[=<ordinal>] device permanently lost from that ordinal (default 0)
//	flip@p=<prob>       silent readback bit flips, per 64-bit result word
//	flip@shared=<prob>  silent shared-memory bit flips, per 32-bit word
//	flip@launch=<ordinal> forced corruption burst on that executed launch
//
// devices, when positive, bounds the valid device indices: a clause
// naming an ordinal outside [0, devices) is rejected rather than left
// silently inert. Pass 0 when the device count is not yet known.
//
// Example: "0:p=0.2;1:at=1,at=3;2:flip@p=1e-6". Each device's
// injector draws probabilistic faults from seed+<dev> (silent flips
// from an independent stream of the same seed), so a spec plus a seed
// fully determines the fault schedule.
func ParseFaults(spec string, seed int64, devices int) (map[int]*FaultInjector, error) {
	out := make(map[int]*FaultInjector)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		devStr, faults, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("simt: fault clause %q lacks a device prefix (want \"<dev>:<fault>\")", clause)
		}
		dev, err := strconv.Atoi(strings.TrimSpace(devStr))
		if err != nil || dev < 0 {
			return nil, fmt.Errorf("simt: bad device index %q in fault clause %q", devStr, clause)
		}
		if devices > 0 && dev >= devices {
			return nil, fmt.Errorf("simt: fault clause %q names device %d, but only devices 0..%d are configured",
				clause, dev, devices-1)
		}
		inj := out[dev]
		if inj == nil {
			inj = NewFaultInjector(seed + int64(dev))
			out[dev] = inj
		}
		// Silent flips draw from a stream distinct from the fail-stop
		// one so adding a flip clause never perturbs an existing
		// fail-stop schedule (and vice versa).
		mem := func() *MemFaultInjector { return inj.memInjector(seed + int64(dev) + 0x5DC) }
		for _, tok := range strings.Split(faults, ",") {
			tok = strings.TrimSpace(tok)
			key, val, hasVal := strings.Cut(tok, "=")
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if !hasVal || err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("simt: bad fault probability %q in clause %q", tok, clause)
				}
				inj.FailProb(p)
			case "at", "hang":
				ord, err := strconv.ParseInt(val, 10, 64)
				if !hasVal || err != nil || ord < 0 {
					return nil, fmt.Errorf("simt: bad launch ordinal %q in clause %q", tok, clause)
				}
				kind := FaultLaunch
				if key == "hang" {
					kind = FaultHang
				}
				inj.FailAt(ord, kind)
			case "dead":
				ord := int64(0)
				if hasVal {
					var err error
					ord, err = strconv.ParseInt(val, 10, 64)
					if err != nil || ord < 0 {
						return nil, fmt.Errorf("simt: bad launch ordinal %q in clause %q", tok, clause)
					}
				}
				inj.LoseFrom(ord)
			case "flip@p", "flip@shared":
				p, err := strconv.ParseFloat(val, 64)
				if !hasVal || err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("simt: bad flip probability %q in clause %q", tok, clause)
				}
				if key == "flip@p" {
					mem().FlipProb(p)
				} else {
					mem().FlipShared(p)
				}
			case "flip@launch":
				ord, err := strconv.ParseInt(val, 10, 64)
				if !hasVal || err != nil || ord < 0 {
					return nil, fmt.Errorf("simt: bad launch ordinal %q in clause %q", tok, clause)
				}
				mem().FlipAt(ord)
			default:
				return nil, fmt.Errorf("simt: unknown fault %q in clause %q (want p=, at=, hang=, dead, flip@p=, flip@shared=, flip@launch=)", tok, clause)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("simt: fault spec %q names no devices", spec)
	}
	return out, nil
}

// KernelPanicError is a kernel-goroutine panic recovered by
// Device.Launch: an illegal kernel (shuffle on a device without
// shuffle support, __syncthreads outside a cooperative launch, an
// out-of-bounds shared access) is reported as an error instead of
// killing the process. Kernel panics are deterministic — the same
// kernel on the same input panics again — so callers must treat them
// as fatal to the run, not retryable.
type KernelPanicError struct {
	// Device is the device's track label; Spec its hardware name.
	Device string
	Spec   string
	// Kernel is the launch's configured name ("msv", ...).
	Kernel string
	// Block and Warp locate the faulting warp in the grid (-1 when the
	// panic carried no location).
	Block, Warp int
	// Op names the offending operation ("shfl.xor", "__syncthreads")
	// when known.
	Op string
	// Value is the recovered panic value (for structured kernel faults,
	// the formatted message).
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *KernelPanicError) Error() string {
	loc := ""
	if e.Block >= 0 {
		loc = fmt.Sprintf(" block %d warp %d", e.Block, e.Warp)
	}
	op := ""
	if e.Op != "" {
		op = e.Op + ": "
	}
	return fmt.Sprintf("simt: kernel %q panicked on %s (%s)%s: %s%v",
		e.Kernel, e.Device, e.Spec, loc, op, e.Value)
}

// kernelFault is the structured panic payload raised by Warp methods
// on illegal operations, so the recovered KernelPanicError can report
// exactly which warp of which block executed what.
type kernelFault struct {
	op          string
	block, warp int
	device      string
	msg         string
}

func (f *kernelFault) String() string {
	return fmt.Sprintf("simt: %s on %s, block %d warp %d: %s", f.op, f.device, f.block, f.warp, f.msg)
}

// fail raises a structured kernel fault carrying the warp's device and
// grid coordinates; Device.Launch recovers it into a KernelPanicError.
func (w *Warp) fail(op, format string, args ...any) {
	panic(&kernelFault{
		op:     op,
		block:  w.BlockIdx,
		warp:   w.WarpInBlock,
		device: w.dev.Spec.Name,
		msg:    fmt.Sprintf(format, args...),
	})
}

// barrierBroken is the panic payload used to unblock warps parked in a
// __syncthreads barrier when a sibling warp has already panicked; it is
// swallowed at recovery (the original panic is the reported error).
type barrierBroken struct{}
