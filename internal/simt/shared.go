package simt

import "sync"

// SharedMem models a block's on-chip shared memory: byte-addressable
// storage divided into 32 four-byte-wide banks, with bank-conflict
// accounting per warp access and optional cross-warp race detection
// between barriers.
//
// The mutex serialises warp accesses within a block so that a
// simulated racy kernel (the paper's synchronised multi-warp baseline
// run without its barriers) is detected and reported by the epoch
// tracker rather than corrupting the host process: lost updates are a
// modelled hazard, not Go-level undefined behaviour.
type SharedMem struct {
	mu    sync.Mutex
	data  []byte
	banks int

	// concurrent is set per block by the scheduler: true only when a
	// cooperative multi-warp block runs its warps on separate
	// goroutines. Serial (warp-synchronous) blocks skip the mutex
	// entirely — the common case, and the hot path.
	concurrent bool

	// faults, when non-nil, is this block's silent-corruption overlay
	// (byte offset -> XOR mask, drawn once per launch by
	// MemFaultInjector). The mask is applied on the read path so a
	// corrupted byte reads wrong for the whole launch regardless of
	// warp interleaving — stores land in data unmodified, like a cell
	// whose readout circuitry is flipping the bit.
	faults map[int]byte

	// Race tracking at byte granularity (word granularity would flag
	// byte-disjoint neighbours in the same word, which the hardware
	// permits). epoch advances at every block barrier; an access races
	// when a different warp touched the same byte in the same epoch
	// and at least one of the two accesses was a write.
	trackRaces bool
	epoch      int32
	lastWarp   []int32
	lastEpoch  []int32
	lastWrite  []bool
	races      int64
}

func newSharedMem(size, banks int, trackRaces bool) *SharedMem {
	sm := &SharedMem{
		data:       make([]byte, size),
		banks:      banks,
		trackRaces: trackRaces,
	}
	if trackRaces {
		sm.lastWarp = make([]int32, size)
		for i := range sm.lastWarp {
			sm.lastWarp[i] = -1
		}
		sm.lastEpoch = make([]int32, size)
		sm.lastWrite = make([]bool, size)
	}
	return sm
}

// Size returns the shared allocation size in bytes.
func (sm *SharedMem) Size() int { return len(sm.data) }

// reset prepares a pooled SharedMem for the next block: zeroed
// storage, fresh race-tracking state, and the block's fault overlay.
// Reuse keeps the per-block cost at one memclr instead of an
// allocation + GC pressure per block.
func (sm *SharedMem) reset(faults map[int]byte, concurrent bool) {
	clear(sm.data)
	sm.faults = faults
	sm.concurrent = concurrent
	sm.races = 0
	sm.epoch = 0
	if sm.trackRaces {
		for i := range sm.lastWarp {
			sm.lastWarp[i] = -1
		}
		clear(sm.lastEpoch)
		clear(sm.lastWrite)
	}
}

// at reads one byte through the silent-corruption overlay. All load
// paths go through it; the store paths write sm.data directly.
func (sm *SharedMem) at(a int) byte {
	b := sm.data[a]
	if sm.faults != nil {
		b ^= sm.faults[a]
	}
	return b
}

// conflictDegree computes the bank-conflict replay factor of one warp
// access: the maximum, over banks, of the number of distinct 4-byte
// words the warp touches in that bank. Lanes hitting the same word
// broadcast and do not conflict. addrs entries < 0 denote inactive
// lanes.
func (sm *SharedMem) conflictDegree(addrs []int) int {
	// Fast path: a warp access whose active addresses span fewer than
	// banks*4 bytes touches at most `banks` contiguous words, which
	// map to pairwise-distinct banks — conflict-free by construction.
	// This covers the kernels' consecutive-cell access patterns.
	lo, hi := -1, -1
	for _, a := range addrs {
		if a < 0 {
			continue
		}
		if lo < 0 || a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if lo < 0 {
		return 1 // fully inactive access
	}
	if (hi>>2)-(lo>>2) < sm.banks {
		// At most `banks` consecutive word slots: pairwise-distinct
		// banks, so no replay is possible.
		return 1
	}
	// A warp has at most 32 lanes; linear scan over small sets beats
	// map allocation here.
	type wb struct{ word, bank int }
	var seen [32]wb
	n := 0
	var perBank [32]int8
	degree := 1
	for _, a := range addrs {
		if a < 0 {
			continue
		}
		word := a >> 2
		bank := word % sm.banks
		dup := false
		for i := 0; i < n; i++ {
			if seen[i].word == word {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[n] = wb{word, bank}
		n++
		perBank[bank]++
		if int(perBank[bank]) > degree {
			degree = int(perBank[bank])
		}
	}
	return degree
}

func (sm *SharedMem) noteAccess(warp int32, addrs []int, width int, isWrite bool) {
	if !sm.trackRaces {
		return
	}
	for _, a := range addrs {
		if a < 0 {
			continue
		}
		for b := a; b < a+width && b < len(sm.lastWarp); b++ {
			if sm.lastEpoch[b] == sm.epoch && sm.lastWarp[b] >= 0 && sm.lastWarp[b] != warp &&
				(isWrite || sm.lastWrite[b]) {
				sm.races++
			}
			// Writes claim the byte; reads only claim unowned bytes so
			// a later conflicting write is still caught.
			if isWrite || sm.lastEpoch[b] != sm.epoch || sm.lastWarp[b] < 0 {
				sm.lastWarp[b] = warp
				sm.lastEpoch[b] = sm.epoch
				sm.lastWrite[b] = isWrite
			}
		}
	}
}

// noteSpan is noteAccess for a contiguous byte range [base, base+n):
// the same per-byte epoch bookkeeping without the address vector.
func (sm *SharedMem) noteSpan(warp int32, base, n int, isWrite bool) {
	if !sm.trackRaces {
		return
	}
	if base < 0 {
		return
	}
	for b := base; b < base+n && b < len(sm.lastWarp); b++ {
		if sm.lastEpoch[b] == sm.epoch && sm.lastWarp[b] >= 0 && sm.lastWarp[b] != warp &&
			(isWrite || sm.lastWrite[b]) {
			sm.races++
		}
		if isWrite || sm.lastEpoch[b] != sm.epoch || sm.lastWarp[b] < 0 {
			sm.lastWarp[b] = warp
			sm.lastEpoch[b] = sm.epoch
			sm.lastWrite[b] = isWrite
		}
	}
}

func (sm *SharedMem) advanceEpoch() { sm.epoch++ }
