package simt

// Warp is the execution context handed to a kernel: one 32-lane SIMT
// work unit. Kernels perform their lane arithmetic in ordinary Go and
// report costs through the Warp's operations; shared and global memory
// go through the Warp so that bank conflicts, coalescing, races and
// cycles are accounted.
//
// A Warp is owned by a single goroutine for the duration of the kernel.
type Warp struct {
	// BlockIdx is the block index within the grid.
	BlockIdx int
	// WarpInBlock is this warp's index within its block
	// (threadIdx.y in the paper's launch configuration).
	WarpInBlock int
	// NumBlocks and WarpsPerBlock describe the launch geometry.
	NumBlocks     int
	WarpsPerBlock int

	dev   *Device
	block *blockRun
	// cost is the launch's CostModel; nil in ModeFast, in which case
	// every operation still moves the same data through the same fault
	// and race machinery but records nothing.
	cost  CostModel
	stats KernelStats

	cyclesSinceSync int64
}

// Lanes returns the warp width (32).
func (w *Warp) Lanes() int { return w.dev.Spec.WarpSize }

// GlobalWarpID returns the paper's "row" index:
// blockIdx * warpsPerBlock + warpInBlock.
func (w *Warp) GlobalWarpID() int { return w.BlockIdx*w.WarpsPerBlock + w.WarpInBlock }

// TotalWarps returns the paper's "duty span": the number of warps in
// the grid.
func (w *Warp) TotalWarps() int { return w.NumBlocks * w.WarpsPerBlock }

// HasShuffle reports whether the device supports warp-shuffle
// instructions (Kepler); Fermi kernels must take the shared-memory
// reduction path instead.
func (w *Warp) HasShuffle() bool { return w.dev.Spec.HasShuffle }

func (w *Warp) addCycles(n int64) {
	w.stats.IssueCycles += n
	w.cyclesSinceSync += n
}

// noteLanes records SIMT lane activity for a memory operation.
func (w *Warp) noteLanes(addrs []int) {
	w.stats.TotalLaneSlots += int64(len(addrs))
	for _, a := range addrs {
		if a >= 0 {
			w.stats.ActiveLaneSlots++
		}
	}
}

// noteLanes64 is noteLanes for global (64-bit) addresses.
func (w *Warp) noteLanes64(addrs []int64) {
	w.stats.TotalLaneSlots += int64(len(addrs))
	for _, a := range addrs {
		if a >= 0 {
			w.stats.ActiveLaneSlots++
		}
	}
}

// ALU accounts n arithmetic warp instructions.
func (w *Warp) ALU(n int) {
	if w.cost != nil {
		w.cost.ALU(w, n)
	}
}

// SharedLoadU8 gathers one byte per lane from block shared memory.
// addrs must have one entry per lane; negative entries mark inactive
// lanes. Bank conflicts are counted and cost replay cycles.
func (w *Warp) SharedLoadU8(addrs []int) []uint8 {
	out := make([]uint8, len(addrs))
	w.SharedLoadU8Into(out, addrs)
	return out
}

// SharedStoreU8 scatters one byte per lane into block shared memory.
func (w *Warp) SharedStoreU8(addrs []int, vals []uint8) {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedAccess(w, sm, addrs, true)
	}
	if sm.trackRaces {
		sm.noteAccess(int32(w.WarpInBlock), addrs, 1, true)
	}
	for i, a := range addrs {
		if a >= 0 {
			sm.data[a] = vals[i]
		}
	}
}

// SharedLoadI16 gathers one 16-bit word per lane (addresses in bytes,
// must be 2-aligned).
func (w *Warp) SharedLoadI16(addrs []int) []int16 {
	out := make([]int16, len(addrs))
	w.SharedLoadI16Into(out, addrs)
	return out
}

// SharedStoreI16 scatters one 16-bit word per lane.
func (w *Warp) SharedStoreI16(addrs []int, vals []int16) {
	sm := w.block.shared
	if sm.concurrent {
		sm.mu.Lock()
		defer sm.mu.Unlock()
	}
	if w.cost != nil {
		w.cost.SharedAccess(w, sm, addrs, true)
	}
	if sm.trackRaces {
		sm.noteAccess(int32(w.WarpInBlock), addrs, 2, true)
	}
	for i, a := range addrs {
		if a >= 0 {
			sm.data[a] = byte(uint16(vals[i]))
			sm.data[a+1] = byte(uint16(vals[i]) >> 8)
		}
	}
}

// GlobalLoad accounts a warp global-memory read of width bytes per
// lane at the given logical byte addresses (negative = inactive lane),
// counting 128-byte coalesced transactions. The caller reads the
// actual data from its own Go-side buffers; the simulator only meters
// the traffic.
func (w *Warp) GlobalLoad(addrs []int64, width int) {
	if w.cost != nil {
		w.cost.GlobalAccess(w, addrs, width, false, false)
	}
}

// GlobalLoadCached accounts a warp read through the read-only data
// cache path (LDG/texture): heavily reused data such as model
// parameters. Transactions are counted separately so the performance
// model can treat most of them as L2 hits rather than DRAM traffic.
func (w *Warp) GlobalLoadCached(addrs []int64, width int) {
	if w.cost != nil {
		w.cost.GlobalAccess(w, addrs, width, true, false)
	}
}

// GlobalStoreCached accounts a warp write whose working set stays in
// L2 (e.g. spilled DP rows that are re-read within the same kernel).
func (w *Warp) GlobalStoreCached(addrs []int64, width int) {
	if w.cost != nil {
		w.cost.GlobalAccess(w, addrs, width, true, true)
	}
}

// GlobalStore accounts a warp global-memory write.
func (w *Warp) GlobalStore(addrs []int64, width int) {
	if w.cost != nil {
		w.cost.GlobalAccess(w, addrs, width, false, true)
	}
}

// coalescedTransactions counts distinct 128-byte segments touched.
func coalescedTransactions(addrs []int64, width int) int {
	var segs [64]int64
	n := 0
	for _, a := range addrs {
		if a < 0 {
			continue
		}
		for b := a >> 7; b <= (a+int64(width)-1)>>7; b++ {
			dup := false
			for i := 0; i < n; i++ {
				if segs[i] == b {
					dup = true
					break
				}
			}
			if !dup && n < len(segs) {
				segs[n] = b
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return n
}

// ShflXorI32 is the Kepler butterfly-exchange shuffle: lane l receives
// the value of lane l XOR mask. On a device without shuffle support
// (an illegal instruction on Fermi) it raises a structured kernel
// fault that Device.Launch reports as a *KernelPanicError.
func (w *Warp) ShflXorI32(vals []int32, mask int) []int32 {
	out := make([]int32, len(vals))
	w.ShflXorI32Into(out, vals, mask)
	return out
}

// VoteAll is the warp-vote __all instruction: true iff the predicate
// holds on every lane.
func (w *Warp) VoteAll(pred []bool) bool {
	if w.cost != nil {
		w.cost.Vote(w)
	}
	for _, p := range pred {
		if !p {
			return false
		}
	}
	return true
}

// Vote meters one warp-vote instruction without scanning a predicate
// vector: the op for kernels that fold the per-lane predicate into a
// host-side flag while computing it (one pass instead of two).
func (w *Warp) Vote() {
	if w.cost != nil {
		w.cost.Vote(w)
	}
}

// VoteAny is the warp-vote __any instruction.
func (w *Warp) VoteAny(pred []bool) bool {
	if w.cost != nil {
		w.cost.Vote(w)
	}
	for _, p := range pred {
		if p {
			return true
		}
	}
	return false
}

// Sync executes a block-wide __syncthreads barrier. Only legal in a
// cooperative launch; the warp-synchronous kernels of the paper never
// call it.
func (w *Warp) Sync() {
	if w.block.barrier == nil {
		w.fail("__syncthreads", "barrier in a non-cooperative launch")
	}
	if w.cost != nil {
		w.cost.Sync(w)
	}
	maxCycles := w.block.barrier.wait(w.cyclesSinceSync)
	if w.cost != nil {
		w.stats.SyncStallCycles += maxCycles - w.cyclesSinceSync
	}
	w.cyclesSinceSync = 0
	if w.WarpInBlock == 0 {
		// Exactly one warp advances the race-tracking epoch; the
		// barrier's second phase orders this against all accesses.
		w.block.shared.advanceEpoch()
	}
	w.block.barrier.release()
}
