package simt

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func launchOnce(t *testing.T, dev *Device) error {
	t.Helper()
	_, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1}, func(w *Warp) {
		w.ALU(1)
	})
	return err
}

func TestFaultInjectorAtOrdinal(t *testing.T) {
	dev := NewDevice(TeslaK40())
	dev.Faults = NewFaultInjector(1).FailAt(1, FaultLaunch).FailAt(2, FaultHang)

	if err := launchOnce(t, dev); err != nil {
		t.Fatalf("launch 0: unexpected error %v", err)
	}

	err := launchOnce(t, dev)
	if !errors.Is(err, ErrLaunchFailed) {
		t.Fatalf("launch 1: err = %v, want ErrLaunchFailed", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("launch 1: err = %v, want *FaultError", err)
	}
	if fe.Device != dev.Track() || fe.Ordinal != 1 || fe.Persistent {
		t.Errorf("fault = %+v, want device %q ordinal 1 transient", fe, dev.Track())
	}
	if !IsTransientFault(err) || IsPersistentFault(err) {
		t.Errorf("launch-failed fault misclassified: transient=%v persistent=%v",
			IsTransientFault(err), IsPersistentFault(err))
	}

	err = launchOnce(t, dev)
	if !errors.Is(err, ErrDeviceHung) {
		t.Fatalf("launch 2: err = %v, want ErrDeviceHung", err)
	}
	if !IsTransientFault(err) {
		t.Error("hang fault should be transient (device returned control)")
	}

	if err := launchOnce(t, dev); err != nil {
		t.Fatalf("launch 3: unexpected error %v", err)
	}
	if got := dev.Faults.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
	if got := dev.Faults.Launches(); got != 4 {
		t.Errorf("Launches() = %d, want 4", got)
	}
}

func TestFaultInjectorDeviceLost(t *testing.T) {
	dev := NewDevice(TeslaK40())
	dev.Faults = NewFaultInjector(1).LoseFrom(2)

	for i := 0; i < 2; i++ {
		if err := launchOnce(t, dev); err != nil {
			t.Fatalf("launch %d: unexpected error %v", i, err)
		}
	}
	// Lost is sticky: every launch from the ordinal on fails.
	for i := 2; i < 5; i++ {
		err := launchOnce(t, dev)
		if !errors.Is(err, ErrDeviceLost) {
			t.Fatalf("launch %d: err = %v, want ErrDeviceLost", i, err)
		}
		if !IsPersistentFault(err) || IsTransientFault(err) {
			t.Fatalf("launch %d: lost fault misclassified", i)
		}
	}
}

func TestFaultInjectorProbDeterminism(t *testing.T) {
	schedule := func(seed int64) []bool {
		dev := NewDevice(TeslaK40())
		dev.Faults = NewFaultInjector(seed).FailProb(0.4)
		out := make([]bool, 64)
		for i := range out {
			out[i] = launchOnce(t, dev) != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("launch %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("p=0.4 over %d launches injected %d faults; want some but not all", len(a), faults)
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical fault schedules")
	}
}

func TestParseFaults(t *testing.T) {
	inj, err := ParseFaults("0:p=0.2;1:at=1,hang=3;2:dead", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != 3 {
		t.Fatalf("parsed %d devices, want 3", len(inj))
	}
	if inj[0].p != 0.2 {
		t.Errorf("device 0 p = %v, want 0.2", inj[0].p)
	}
	if inj[1].at[1] != FaultLaunch || inj[1].at[3] != FaultHang {
		t.Errorf("device 1 schedule = %v, want at=1 launch, at=3 hang", inj[1].at)
	}
	if inj[2].lostFrom != 0 {
		t.Errorf("device 2 lostFrom = %d, want 0", inj[2].lostFrom)
	}

	if _, err := ParseFaults("3:dead=5", 0, 0); err != nil {
		t.Errorf("dead=<ordinal>: unexpected error %v", err)
	}

	for _, bad := range []string{
		"", "p=0.5", "x:p=0.5", "0:p=2", "0:at=x", "0:frob=1", "0:at", "-1:dead",
		"0:flip", "0:flip@p", "0:flip@p=2", "0:flip@p=x", "0:flip@shared=-1",
		"0:flip@launch", "0:flip@launch=-1", "0:flip@launch=x", "0:flip@global=0.1",
	} {
		if _, err := ParseFaults(bad, 0, 0); err == nil {
			t.Errorf("ParseFaults(%q) accepted, want error", bad)
		}
	}
}

func TestParseFaultsFlipSyntax(t *testing.T) {
	inj, err := ParseFaults("0:flip@p=1e-6;1:flip@shared=0.01,flip@launch=7;2:p=0.1", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inj[0].Mem == nil || inj[0].Mem.readbackP != 1e-6 {
		t.Errorf("device 0 readback flip prob not wired: %+v", inj[0].Mem)
	}
	if inj[1].Mem == nil || inj[1].Mem.sharedP != 0.01 || !inj[1].Mem.atLaunch[7] {
		t.Errorf("device 1 shared/launch flips not wired: %+v", inj[1].Mem)
	}
	if inj[2].Mem != nil {
		t.Error("device 2 has a memory-fault injector despite no flip clause")
	}
	if inj[1].p != 0 {
		t.Error("flip clauses leaked into the fail-stop probability")
	}
}

func TestParseFaultsRejectsOutOfRangeDevice(t *testing.T) {
	if _, err := ParseFaults("3:dead", 0, 4); err != nil {
		t.Errorf("device 3 of 4: unexpected error %v", err)
	}
	_, err := ParseFaults("4:flip@p=0.5", 0, 4)
	if err == nil {
		t.Fatal("device 4 of 4 accepted, want error")
	}
	if !strings.Contains(err.Error(), "only devices 0..3 are configured") {
		t.Errorf("error %q does not name the configured range", err)
	}
}

func TestApplyFaults(t *testing.T) {
	sys := NewSystem(TeslaK40(), 2)
	inj, err := ParseFaults("1:dead", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ApplyFaults(inj); err != nil {
		t.Fatal(err)
	}
	if sys.Devices[0].Faults != nil || sys.Devices[1].Faults == nil {
		t.Error("ApplyFaults attached injectors to the wrong devices")
	}
	bad, _ := ParseFaults("5:dead", 0, 0)
	if err := sys.ApplyFaults(bad); err == nil {
		t.Error("ApplyFaults accepted an out-of-range device index")
	}
}

func TestKernelPanicRecoveredWithContext(t *testing.T) {
	dev := NewDevice(GTX580())
	_, err := dev.Launch(LaunchConfig{Blocks: 3, WarpsPerBlock: 1, Name: "msv", HostWorkers: 1},
		func(w *Warp) {
			if w.BlockIdx == 1 {
				w.ShflXorI32Into(make([]int32, 32), make([]int32, 32), 16)
			}
		})
	var kp *KernelPanicError
	if !errors.As(err, &kp) {
		t.Fatalf("err = %v, want *KernelPanicError", err)
	}
	if kp.Op != "shfl.xor" || kp.Block != 1 || kp.Warp != 0 || kp.Kernel != "msv" {
		t.Errorf("panic context = op %q block %d warp %d kernel %q; want shfl.xor/1/0/msv",
			kp.Op, kp.Block, kp.Warp, kp.Kernel)
	}
	if kp.Device != dev.Track() {
		t.Errorf("panic device = %q, want %q", kp.Device, dev.Track())
	}
	// Kernel panics are deterministic bugs, never device faults.
	if IsTransientFault(err) || IsPersistentFault(err) {
		t.Error("kernel panic classified as a device fault")
	}
}

func TestRawPanicRecovered(t *testing.T) {
	dev := NewDevice(TeslaK40())
	_, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1}, func(w *Warp) {
		panic("kernel bug")
	})
	var kp *KernelPanicError
	if !errors.As(err, &kp) {
		t.Fatalf("err = %v, want *KernelPanicError", err)
	}
	if kp.Value != "kernel bug" || kp.Stack == "" {
		t.Errorf("recovered value = %v (stack %d bytes), want original payload with stack",
			kp.Value, len(kp.Stack))
	}
}

// A panic in one warp of a cooperative block must not deadlock sibling
// warps parked in __syncthreads: the barrier is poisoned and the launch
// returns the original panic.
func TestCooperativePanicPoisonsBarrier(t *testing.T) {
	dev := NewDevice(TeslaK40())
	done := make(chan error, 1)
	go func() {
		_, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 4, Cooperative: true},
			func(w *Warp) {
				if w.WarpInBlock == 2 {
					panic("warp 2 dies before the barrier")
				}
				w.Sync()
			})
		done <- err
	}()
	select {
	case err := <-done:
		var kp *KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("err = %v, want *KernelPanicError", err)
		}
		if kp.Value != "warp 2 dies before the barrier" {
			t.Errorf("recovered value = %v, want the original panic", kp.Value)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cooperative launch deadlocked after a warp panic")
	}
}

func TestLaunchTimeoutReturnsHung(t *testing.T) {
	dev := NewDevice(TeslaK40())
	dev.LaunchTimeout = 20 * time.Millisecond
	release := make(chan struct{})
	_, err := dev.Launch(LaunchConfig{Blocks: 1, WarpsPerBlock: 1}, func(w *Warp) {
		<-release
	})
	close(release)
	if !errors.Is(err, ErrDeviceHung) {
		t.Fatalf("err = %v, want ErrDeviceHung", err)
	}
	if !IsTransientFault(err) {
		t.Error("watchdog hang should classify as transient")
	}

	// A fast launch under the same deadline succeeds.
	if err := launchOnce(t, dev); err != nil {
		t.Fatalf("fast launch under deadline: %v", err)
	}
}
