package simt

// Silent-data-corruption model. Unlike the fail-stop faults in
// fault.go, a memory flip announces nothing: the launch succeeds and
// the numbers are simply wrong. The paper's hardware mix makes this a
// first-class concern — the GTX 580s are consumer parts with no ECC,
// while the Tesla K40 corrects single-bit errors in hardware — so the
// injector is per-device and respects DeviceSpec.ECC: on an ECC device
// the same draws are made (keeping schedules comparable across
// configurations) but every flip is counted as corrected and none is
// applied.
//
// Two corruption sites are modelled, chosen for what the integrity
// layer can and cannot see:
//
//   - Readback flips (FlipProb, per 64-bit result word) land in the
//     device-resident score buffer as the host reads it back. A flipped
//     float64 score almost surely leaves the filter's quantized score
//     grid, so these are deterministically detectable by the grid
//     guards in internal/integrity.
//   - Shared-memory flips (FlipShared, per 32-bit word of the launch's
//     shared allocation) corrupt live DP state mid-kernel. The kernel
//     then computes a wrong but well-formed score that may pass every
//     cheap guard — the detection-recall case the sdc benchmark
//     measures.
//
// FlipAt schedules a deterministic burst on one executed launch
// ordinal: several shared-byte flips plus one guaranteed readback
// flip, so tests can force a detection without probabilistic draws.

import (
	"math"
	"math/rand"
	"sync"
)

// ReadbackFlip is one silent bit flip in a device-resident result
// buffer, surfaced when the host reads the buffer back: Word indexes
// the 64-bit word, Bit the bit to XOR into it.
type ReadbackFlip struct {
	Word int
	Bit  uint
}

// MemFaultInjector injects silent memory corruption into a device's
// launches. Attach one via FaultInjector.Mem (ParseFaults does this
// for flip@ clauses); a nil injector flips nothing. All draws come
// from a seeded generator and are consumed in deterministic order
// (launch plan, then readback, per executed launch), so a spec plus a
// seed fully determines the corruption schedule.
type MemFaultInjector struct {
	mu            sync.Mutex
	rng           *rand.Rand
	readbackP     float64
	sharedP       float64
	atLaunch      map[int64]bool
	launches      int64
	flips         int64
	corrected     int64
	forceReadback bool
}

// NewMemFaultInjector returns an injector drawing from a generator
// seeded with seed.
func NewMemFaultInjector(seed int64) *MemFaultInjector {
	return &MemFaultInjector{
		rng:      rand.New(rand.NewSource(seed)),
		atLaunch: make(map[int64]bool),
	}
}

// FlipProb sets the per-launch, per-64-bit-word probability of a
// readback bit flip in the device result buffer.
func (m *MemFaultInjector) FlipProb(p float64) *MemFaultInjector {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readbackP = p
	return m
}

// FlipShared sets the per-launch, per-32-bit-word probability of a
// bit flip in the launch's shared-memory allocation.
func (m *MemFaultInjector) FlipShared(p float64) *MemFaultInjector {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sharedP = p
	return m
}

// FlipAt schedules a forced corruption burst on the given executed
// launch ordinal (0-based, counting only launches that passed
// fail-stop arbitration): a handful of shared-byte flips plus one
// guaranteed readback flip consumed by the next readback.
func (m *MemFaultInjector) FlipAt(ordinal int64) *MemFaultInjector {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.atLaunch[ordinal] = true
	return m
}

// Launches returns how many executed launches the injector has seen.
func (m *MemFaultInjector) Launches() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.launches
}

// Flips returns how many bit/byte flips have been applied.
func (m *MemFaultInjector) Flips() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flips
}

// Corrected returns how many flips ECC hardware suppressed.
func (m *MemFaultInjector) Corrected() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.corrected
}

// memFlipPlan is one launch's shared-memory corruption, drawn up
// front under the injector lock so the applied flips are independent
// of host goroutine interleaving: block index -> byte offset -> XOR
// mask applied on every read of that byte.
type memFlipPlan struct {
	shared map[int]map[int]byte
}

// geoSkip draws the gap (>= 1) to the next flipped word for a
// per-word probability p, geometrically, so sparse rates do not cost
// one rng call per word of a multi-megabyte allocation.
func geoSkip(rng *rand.Rand, p float64) int64 {
	u := rng.Float64()
	return int64(math.Floor(math.Log(1-u)/math.Log(1-p))) + 1
}

// memPlan consumes one executed launch ordinal and draws its
// shared-memory corruption. ecc suppresses every flip (counted as
// corrected). Returns nil when nothing is to be applied.
func (m *MemFaultInjector) memPlan(ecc bool, sharedBytesPerBlock, blocks int) *memFlipPlan {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ord := m.launches
	m.launches++

	var plan *memFlipPlan
	addShared := func(block, off int, mask byte) {
		if ecc {
			m.corrected++
			return
		}
		m.flips++
		if plan == nil {
			plan = &memFlipPlan{shared: make(map[int]map[int]byte)}
		}
		bm := plan.shared[block]
		if bm == nil {
			bm = make(map[int]byte)
			plan.shared[block] = bm
		}
		bm[off] ^= mask
	}

	wordsPerBlock := sharedBytesPerBlock / 4
	if m.sharedP > 0 && wordsPerBlock > 0 && blocks > 0 {
		words := int64(blocks) * int64(wordsPerBlock)
		for w := geoSkip(m.rng, m.sharedP) - 1; w < words; w += geoSkip(m.rng, m.sharedP) {
			bit := uint(m.rng.Intn(32))
			block := int(w / int64(wordsPerBlock))
			off := int(w%int64(wordsPerBlock))*4 + int(bit/8)
			addShared(block, off, 1<<(bit%8))
		}
	}
	if m.atLaunch[ord] {
		if sharedBytesPerBlock > 0 && blocks > 0 {
			for i := 0; i < 8; i++ {
				block := m.rng.Intn(blocks)
				off := m.rng.Intn(sharedBytesPerBlock)
				addShared(block, off, 1<<uint(m.rng.Intn(8)))
			}
		}
		if ecc {
			m.corrected++
		} else {
			m.forceReadback = true
		}
	}
	return plan
}

// readbackFaults draws the silent flips landing in a device result
// buffer of n 64-bit words as the host reads it back, consuming any
// forced flip armed by FlipAt.
func (m *MemFaultInjector) readbackFaults(n int, ecc bool) []ReadbackFlip {
	if m == nil || n <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []ReadbackFlip
	emit := func(word int, bit uint) {
		if ecc {
			m.corrected++
			return
		}
		m.flips++
		out = append(out, ReadbackFlip{Word: word, Bit: bit})
	}
	if m.readbackP > 0 {
		for w := geoSkip(m.rng, m.readbackP) - 1; w < int64(n); w += geoSkip(m.rng, m.readbackP) {
			emit(int(w), uint(m.rng.Intn(64)))
		}
	}
	if m.forceReadback {
		m.forceReadback = false
		// Hit the high mantissa / low exponent range so the corruption
		// is numerically large, never lost to downstream rounding.
		emit(m.rng.Intn(n), uint(40+m.rng.Intn(12)))
	}
	return out
}
