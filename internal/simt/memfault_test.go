package simt

import (
	"testing"
)

// flipProbe launches one kernel that stores a known pattern into
// shared memory and reads it back, returning the lane indices whose
// readback disagreed with the stored byte (i.e. the observed silent
// corruption).
func flipProbe(t *testing.T, spec DeviceSpec, mem *MemFaultInjector) []int {
	t.Helper()
	dev := NewDevice(spec)
	dev.Faults = NewFaultInjector(1)
	dev.Faults.Mem = mem
	const sharedBytes = 4096
	var bad []int
	_, err := dev.Launch(LaunchConfig{Blocks: 4, WarpsPerBlock: 1, SharedBytesPerBlock: sharedBytes, HostWorkers: 1},
		func(w *Warp) {
			addrs := make([]int, w.Lanes())
			vals := make([]uint8, w.Lanes())
			for off := 0; off < sharedBytes; off += w.Lanes() {
				for l := range addrs {
					addrs[l] = off + l
					vals[l] = uint8(off + l)
				}
				w.SharedStoreU8(addrs, vals)
				got := w.SharedLoadU8(addrs)
				for l := range got {
					if got[l] != vals[l] {
						bad = append(bad, w.BlockIdx*sharedBytes+off+l)
					}
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return bad
}

func TestMemFlipSharedDeterminism(t *testing.T) {
	a := flipProbe(t, GTX580(), NewMemFaultInjector(11).FlipShared(0.01))
	b := flipProbe(t, GTX580(), NewMemFaultInjector(11).FlipShared(0.01))
	if len(a) == 0 {
		t.Fatal("p=0.01 over 4x4096 bytes flipped nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed flipped %d vs %d bytes", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at flip %d: byte %d vs %d", i, a[i], b[i])
		}
	}
	c := flipProbe(t, GTX580(), NewMemFaultInjector(12).FlipShared(0.01))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 11 and 12 produced identical flip sets")
	}
}

func TestMemFlipECCSuppressed(t *testing.T) {
	mem := NewMemFaultInjector(11).FlipShared(0.05).FlipAt(0)
	if bad := flipProbe(t, TeslaK40(), mem); len(bad) != 0 {
		t.Fatalf("ECC device surfaced %d corrupted bytes", len(bad))
	}
	if mem.Corrected() == 0 {
		t.Error("ECC device corrected no flips despite aggressive injection")
	}
	if mem.Flips() != 0 {
		t.Errorf("ECC device applied %d flips, want 0", mem.Flips())
	}
}

func TestMemFlipAtForcesReadback(t *testing.T) {
	dev := NewDevice(GTX580())
	dev.Faults = NewFaultInjector(1)
	dev.Faults.Mem = NewMemFaultInjector(3).FlipAt(1)
	run := func() {
		if err := launchOnce(t, dev); err != nil {
			t.Fatal(err)
		}
	}

	run() // launch 0: not scheduled
	if flips := dev.ReadbackFaults(8); flips != nil {
		t.Fatalf("launch 0 readback flipped %v, want none", flips)
	}
	run() // launch 1: forced burst
	flips := dev.ReadbackFaults(8)
	if len(flips) != 1 {
		t.Fatalf("forced launch readback: %d flips, want exactly 1", len(flips))
	}
	if f := flips[0]; f.Word < 0 || f.Word >= 8 || f.Bit > 63 {
		t.Errorf("flip %+v out of range for an 8-word buffer", f)
	}
	// The forced flip is consumed: the next readback is clean.
	if flips := dev.ReadbackFaults(8); flips != nil {
		t.Fatalf("post-forced readback flipped %v, want none", flips)
	}
	if dev.Faults.Mem.Flips() == 0 {
		t.Error("applied flips not counted")
	}
	if got := dev.Faults.Mem.Launches(); got != 2 {
		t.Errorf("Launches() = %d, want 2", got)
	}
}

func TestReadbackFaultsNilSafety(t *testing.T) {
	dev := NewDevice(GTX580())
	if flips := dev.ReadbackFaults(8); flips != nil {
		t.Fatalf("no injector: got %v", flips)
	}
	dev.Faults = NewFaultInjector(1) // fail-stop only, no Mem
	if flips := dev.ReadbackFaults(8); flips != nil {
		t.Fatalf("no memory injector: got %v", flips)
	}
}

func FuzzParseFaults(f *testing.F) {
	f.Add("0:p=0.2;1:at=1,hang=3;2:dead", int64(7), 4)
	f.Add("0:flip@p=1e-6,flip@launch=7;1:flip@shared=0.01", int64(0), 2)
	f.Add("3:dead=5", int64(1), 0)
	f.Add("0:frob=1", int64(0), 1)
	f.Add(";;;", int64(0), 0)
	f.Fuzz(func(t *testing.T, spec string, seed int64, devices int) {
		inj, err := ParseFaults(spec, seed, devices)
		if err != nil {
			return
		}
		if len(inj) == 0 {
			t.Errorf("ParseFaults(%q) returned no injectors and no error", spec)
		}
		for dev := range inj {
			if dev < 0 {
				t.Errorf("ParseFaults(%q) accepted negative device %d", spec, dev)
			}
			if devices > 0 && dev >= devices {
				t.Errorf("ParseFaults(%q) accepted device %d outside 0..%d", spec, dev, devices-1)
			}
		}
	})
}
