package simt

// The profiler seam: a Device with a non-nil Profiler hands every
// successful launch a LaunchProfile of per-block counter deltas. The
// hook follows the package's nil-cost-when-off discipline (like the
// nil CostModel and the obs nil receivers): with Profiler nil the
// launch path performs exactly one extra comparison per block and
// allocates nothing.
//
// Mode interaction:
//   - ModeCycleAccurate: every block is profiled (SamplePeriod 1);
//     the per-block deltas partition the launch's aggregate stats.
//   - ModeFast: only blocks with index % SamplePeriod() == 0 are
//     profiled. A sampled block runs with the cycle-accurate cost
//     model attached — accounting is pure bookkeeping, so results
//     stay byte-identical — while unsampled blocks keep the nil cost
//     model and its zero per-operation overhead. The sampled blocks'
//     counters also flow into LaunchReport.Stats, so a fast-mode
//     report is no longer all-zero when a profiler is attached.
//
// Consumers (internal/kernprof) scale sampled counters back up by the
// period; WarpsExecuted needs no scaling because the launch geometry
// fixes it exactly.

// BlockProfile is one profiled block's aggregate counter delta (all
// of the block's warps summed, plus its shared-memory race count).
type BlockProfile struct {
	Block int
	Stats KernelStats
}

// LaunchProfile is the raw collection handed to Profiler.OnLaunch
// after a successful launch: geometry, predicted occupancy, and the
// profiled blocks in ascending block order. The struct and its slice
// are owned by the receiver after the call.
type LaunchProfile struct {
	// Kernel is LaunchConfig.Name ("msv", "p7viterbi", ...; may be
	// empty for anonymous launches).
	Kernel string
	// Device is the device's trace track ("device0", ...).
	Device string
	// Spec is the device specification the launch ran on.
	Spec DeviceSpec
	// Mode is the simulation mode the launch executed under.
	Mode Mode

	// Launch geometry.
	Blocks              int
	WarpsPerBlock       int
	SharedBytesPerBlock int
	RegsPerThread       int

	// Occupancy is the resource-arithmetic prediction Launch computed
	// (the theoretical occupancy of internal/perf's model).
	Occupancy Occupancy

	// SamplePeriod is the block-sampling stride used: 1 in cycle mode,
	// Profiler.SamplePeriod() in fast mode.
	SamplePeriod int

	// Samples holds the profiled blocks, sorted by block index.
	Samples []BlockProfile
}

// Profiler receives per-launch profiles from a Device. Implementations
// must be safe for concurrent use: a multi-device system delivers
// profiles from several launch goroutines.
type Profiler interface {
	// SamplePeriod returns the block-sampling stride for fast-mode
	// launches (values < 1 are treated as 1: profile every block).
	// Cycle-accurate launches always profile every block.
	SamplePeriod() int
	// OnLaunch delivers one completed launch's profile. Failed
	// launches (faults, panics, cancellation, watchdog) deliver
	// nothing.
	OnLaunch(p *LaunchProfile)
}
