package perf

import (
	"hmmer3gpu/internal/obs"
	"hmmer3gpu/internal/simt"
)

// Record merges the time model's view of a set of launches into reg
// under the perf subsystem: modelled device seconds per kernel (the
// numbers the paper's speedup figures are built from), alongside
// which wall-clock gauges from the other subsystems sit, so a single
// metrics table shows modelled vs. measured time.
func Record(reg *obs.Registry, spec simt.DeviceSpec, kernel string, reps ...*simt.LaunchReport) {
	if !reg.Enabled() {
		return
	}
	var sec float64
	for _, rep := range reps {
		if rep != nil {
			sec += GPUTime(spec, rep)
		}
	}
	reg.Add(obs.WithLabel("hmmer_perf_modelled_gpu_seconds_total", "kernel", kernel), sec)
	reg.Help("hmmer_perf_modelled_gpu_seconds_total",
		"modelled device execution time (issue/DRAM bound + launch overhead) per kernel")
}

// RecordBaseline gauges the modelled baseline CPU time for a stage's
// DP-cell count, so speedups can be derived straight from the table.
func RecordBaseline(reg *obs.Registry, c CPUSpec, stage string, cells int64) {
	if !reg.Enabled() {
		return
	}
	var sec float64
	switch stage {
	case "msv":
		sec = CPUTimeMSV(c, cells)
	case "viterbi":
		sec = CPUTimeVit(c, cells)
	default:
		sec = CPUTimeFwd(c, cells)
	}
	reg.Add(obs.WithLabel("hmmer_perf_modelled_cpu_seconds_total", "stage", stage), sec)
}
