// Package perf converts the simulator's kernel counters and the
// baseline's workload size into modelled execution times, from which
// the benchmark harness derives the paper's speedup figures.
//
// The model is deliberately simple and fully documented:
//
//	T_gpu = max(T_issue, T_dram) + launch overhead
//	T_issue = IssueCycles / (SMs * IPC * eff(occupancy) * clock)
//	T_dram  = (GlobalBytes + CachedBytes * l2Miss) / bandwidth
//	T_cpu   = cells / (cellsPerCycle * cores * clock)
//
// Everything that produces the paper's curve *shapes* — the
// shared/global occupancy trade-off, the Viterbi register ceiling, the
// Fermi shuffle and register-file penalties, multi-GPU partitioning —
// comes from the simulator's counters and the occupancy calculation,
// not from these constants. The constants only anchor absolute scale
// (one calibration, documented in constants.go and DESIGN.md §5).
package perf

import (
	"fmt"

	"hmmer3gpu/internal/simt"
)

// CPUSpec models the baseline host: HMMER 3.0 with SSE on a multicore
// CPU.
type CPUSpec struct {
	Name    string
	Cores   int
	ClockHz float64
	// MSVCellsPerCycle and VitCellsPerCycle are per-core DP-cell
	// throughputs of the striped filters (calibration constants).
	MSVCellsPerCycle float64
	VitCellsPerCycle float64
}

// BaselineI5 returns the paper's baseline: a quad-core Intel Core i5
// at 3.4 GHz running HMMER 3.0's SSE filters on all cores.
func BaselineI5() CPUSpec {
	return CPUSpec{
		Name:             "Intel Core i5 quad-core @ 3.4 GHz (SSE, 4 threads)",
		Cores:            4,
		ClockHz:          3.4e9,
		MSVCellsPerCycle: msvCPUCellsPerCycle,
		VitCellsPerCycle: vitCPUCellsPerCycle,
	}
}

// CPUTimeMSV returns the modelled baseline time to run the MSV filter
// over the given number of DP cells (residues x model size).
func CPUTimeMSV(c CPUSpec, cells int64) float64 {
	return float64(cells) / (c.MSVCellsPerCycle * float64(c.Cores) * c.ClockHz)
}

// CPUTimeVit returns the modelled baseline time for the Viterbi filter.
func CPUTimeVit(c CPUSpec, cells int64) float64 {
	return float64(cells) / (c.VitCellsPerCycle * float64(c.Cores) * c.ClockHz)
}

// CPUTimeFwd returns the modelled baseline time for the full-precision
// Forward stage.
func CPUTimeFwd(c CPUSpec, cells int64) float64 {
	return float64(cells) / (fwdCPUCellsPerCycle * float64(c.Cores) * c.ClockHz)
}

// GPUTime converts one launch report into modelled seconds on the
// given device.
func GPUTime(spec simt.DeviceSpec, rep *simt.LaunchReport) float64 {
	return GPUTimeScaled(spec, rep, 1)
}

// GPUTimeScaled models the launch's time with its cell-linear work
// multiplied by scale — used by the harness to report paper-scale
// database times from scaled-down simulation runs (counters are linear
// in the workload; only the fixed launch overhead does not scale).
func GPUTimeScaled(spec simt.DeviceSpec, rep *simt.LaunchReport, scale float64) float64 {
	ipc := effectiveIPC(spec)
	eff := issueEfficiency(rep.Occupancy)
	issueCap := float64(spec.SMCount) * ipc * eff * spec.ClockHz
	tIssue := float64(rep.Stats.IssueCycles+rep.Stats.SyncStallCycles) / issueCap

	dramBytes := float64(rep.Stats.GlobalBytes) + float64(rep.Stats.CachedBytes)*l2MissRate
	tDram := dramBytes / spec.MemBandwidth

	t := tIssue
	if tDram > t {
		t = tDram
	}
	return t*scale + launchOverheadSec
}

// effectiveIPC is the sustained warp-instructions-per-cycle-per-SM for
// these integer/memory-heavy kernels: one per scheduler, plus a modest
// dual-dispatch bonus on Kepler (the paper's step 1/2 overlap).
func effectiveIPC(spec simt.DeviceSpec) float64 {
	return float64(spec.SchedulersPerSM) * (1 + dualIssueBonus*float64(spec.DispatchPerScheduler-1))
}

// issueEfficiency models latency hiding: the SM sustains full issue
// only with enough resident warps; below the saturation point the
// issue rate degrades linearly. The saturation point (24 warps) is why
// the paper's speedups track occupancy so closely.
func issueEfficiency(occ simt.Occupancy) float64 {
	if occ.WarpsPerSM >= warpsToSaturate {
		return 1
	}
	if occ.WarpsPerSM <= 0 {
		return 1.0 / float64(warpsToSaturate)
	}
	return float64(occ.WarpsPerSM) / float64(warpsToSaturate)
}

// Speedup is a convenience: baseline seconds over accelerated seconds.
func Speedup(cpuSec, gpuSec float64) float64 {
	if gpuSec <= 0 {
		return 0
	}
	return cpuSec / gpuSec
}

// Explain renders the time model's view of a launch: which bound
// (issue or DRAM) governs, the efficiency factor, and the headline
// counters — the report cmd/hmmbench prints in verbose contexts.
func Explain(spec simt.DeviceSpec, rep *simt.LaunchReport) string {
	ipc := effectiveIPC(spec)
	eff := issueEfficiency(rep.Occupancy)
	issueCap := float64(spec.SMCount) * ipc * eff * spec.ClockHz
	tIssue := float64(rep.Stats.IssueCycles+rep.Stats.SyncStallCycles) / issueCap
	dramBytes := float64(rep.Stats.GlobalBytes) + float64(rep.Stats.CachedBytes)*l2MissRate
	tDram := dramBytes / spec.MemBandwidth
	bound := "issue"
	if tDram > tIssue {
		bound = "DRAM-bandwidth"
	}
	return fmt.Sprintf(
		"%s: %s-bound; issue %.3gs (eff %.2f, ipc %.1f, occ %s), dram %.3gs (%.3g MB eff), lanes %.0f%%, total %.3gs",
		spec.Name, bound, tIssue, eff, ipc, rep.Occupancy.String(),
		tDram, dramBytes/1e6, rep.Stats.LaneUtilization()*100,
		GPUTime(spec, rep))
}
