package perf

// Calibration constants (DESIGN.md §5). These anchor the absolute
// scale of the time model; they were chosen once so that the Tesla K40
// MSV shared-configuration speedup lands near the paper's ~5x peak at
// model size 800, and are NOT tuned per figure — every other effect
// (crossovers, ceilings, architecture gaps, database differences)
// emerges from the simulator's counters and the occupancy model.
const (
	// msvCPUCellsPerCycle is the per-core throughput of HMMER3's
	// 16-lane 8-bit striped MSV filter: the inner loop retires ~5
	// SSE instructions per 16-cell vector on a superscalar core.
	msvCPUCellsPerCycle = 3.0

	// vitCPUCellsPerCycle is the per-core throughput of the 8-lane
	// 16-bit ViterbiFilter: ~28 SSE instructions per 8-cell vector
	// (three states, four-way max trees, lazy-F bookkeeping).
	vitCPUCellsPerCycle = 0.55

	// fwdCPUCellsPerCycle is the per-core throughput of the
	// full-precision Forward stage (log-sum-exp in floating point, no
	// effective SIMD) — the reason 0.1% of sequences account for ~5%
	// of pipeline time in Figure 1.
	fwdCPUCellsPerCycle = 0.05

	// dualIssueBonus is the fraction of a second instruction slot the
	// Kepler dual-dispatch schedulers fill on this dependent integer
	// code (the paper's concurrent step 1/2 of Figure 5).
	dualIssueBonus = 0.25

	// warpsToSaturate is the resident-warp count per SM at which the
	// issue pipeline is fully latency-hidden. 24 warps corresponds to
	// 37.5% occupancy on Kepler and 50% on Fermi.
	warpsToSaturate = 24

	// l2MissRate is the fraction of read-only cached model traffic
	// that reaches DRAM (the model tables fit in the K40's 1.5 MB L2).
	l2MissRate = 0.1

	// launchOverheadSec is the fixed cost of one kernel launch.
	launchOverheadSec = 20e-6
)
