package perf

import (
	"math/rand"
	"strings"
	"testing"

	"hmmer3gpu/internal/alphabet"
	"hmmer3gpu/internal/gpu"
	"hmmer3gpu/internal/hmm"
	"hmmer3gpu/internal/profile"
	"hmmer3gpu/internal/seq"
	"hmmer3gpu/internal/simt"
)

var abc = alphabet.New()

func smallDB(rng *rand.Rand, n, meanLen int) *seq.Database {
	db := seq.NewDatabase("perftest")
	bg := abc.Backgrounds()
	for i := 0; i < n; i++ {
		L := meanLen/2 + rng.Intn(meanLen)
		res := make([]byte, L)
		for j := range res {
			u, acc := rng.Float64(), 0.0
			res[j] = 19
			for r, f := range bg {
				acc += f
				if u < acc {
					res[j] = byte(r)
					break
				}
			}
		}
		db.Add(&seq.Sequence{Name: "s", Residues: res})
	}
	return db
}

// msvSpeedup runs the MSV kernel on a small workload and returns the
// modelled speedup vs the baseline CPU model.
func msvSpeedup(t *testing.T, spec simt.DeviceSpec, m int, mem gpu.MemConfig, db *seq.Database) float64 {
	t.Helper()
	h, err := hmm.Random("perf", m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(int64(m))))
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	p.SetLength(int(db.MeanLen()))
	mp := profile.NewMSVProfile(p)
	dev := simt.NewDevice(spec)
	ddb := gpu.UploadDB(dev, db)
	rep, err := (&gpu.Searcher{Dev: dev, Mem: mem}).MSVSearch(gpu.UploadMSVProfile(dev, mp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	cells := ddb.TotalResidues * int64(m)
	return Speedup(CPUTimeMSV(BaselineI5(), cells), GPUTime(spec, rep.Launch))
}

func vitSpeedup(t *testing.T, spec simt.DeviceSpec, m int, mem gpu.MemConfig, db *seq.Database) float64 {
	t.Helper()
	h, err := hmm.Random("perf", m, abc, hmm.DefaultBuildParams(), rand.New(rand.NewSource(int64(m))))
	if err != nil {
		t.Fatal(err)
	}
	p := profile.Config(h)
	p.SetLength(int(db.MeanLen()))
	vp := profile.NewVitProfile(p)
	dev := simt.NewDevice(spec)
	ddb := gpu.UploadDB(dev, db)
	rep, err := (&gpu.Searcher{Dev: dev, Mem: mem}).ViterbiSearch(gpu.UploadVitProfile(dev, vp), ddb)
	if err != nil {
		t.Fatal(err)
	}
	cells := ddb.TotalResidues * int64(m)
	return Speedup(CPUTimeVit(BaselineI5(), cells), GPUTime(spec, rep.Launch))
}

// TestMSVSpeedupShape reproduces the qualitative Figure 9 behaviour on
// the K40: speedup rises from small models to a peak near M=800 in the
// shared configuration, and the global configuration wins for very
// large models.
func TestMSVSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel simulation is slow")
	}
	rng := rand.New(rand.NewSource(1))
	db := smallDB(rng, 300, 250)
	k40 := simt.TeslaK40()

	s48 := msvSpeedup(t, k40, 48, gpu.MemShared, db)
	s400 := msvSpeedup(t, k40, 400, gpu.MemShared, db)
	s800 := msvSpeedup(t, k40, 800, gpu.MemShared, db)
	t.Logf("K40 MSV shared speedups: M=48 %.2f, M=400 %.2f, M=800 %.2f", s48, s400, s800)
	if !(s48 < s400 && s400 < s800) {
		t.Errorf("speedup should rise with model size toward the M=800 peak: %.2f %.2f %.2f", s48, s400, s800)
	}
	if s800 < 3.0 || s800 > 8.0 {
		t.Errorf("peak MSV speedup %.2f outside the plausible band around the paper's ~5x", s800)
	}

	s1528s := msvSpeedup(t, k40, 1528, gpu.MemShared, db)
	s1528g := msvSpeedup(t, k40, 1528, gpu.MemGlobal, db)
	t.Logf("K40 MSV at M=1528: shared %.2f, global %.2f", s1528s, s1528g)
	if s1528g <= s1528s {
		t.Errorf("global (%.2f) should beat shared (%.2f) at M=1528", s1528g, s1528s)
	}
}

// TestViterbiBelowMSV: the Viterbi kernel's occupancy ceiling and
// heavier inner loop keep its speedup below MSV's (paper: 2.9x vs
// 5.4x).
func TestViterbiBelowMSV(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel simulation is slow")
	}
	rng := rand.New(rand.NewSource(2))
	db := smallDB(rng, 150, 200)
	k40 := simt.TeslaK40()
	vitPeak := 0.0
	for _, m := range []int{100, 200} {
		vit := vitSpeedup(t, k40, m, gpu.MemAuto, db)
		t.Logf("K40 M=%d: Viterbi %.2f", m, vit)
		if vit > vitPeak {
			vitPeak = vit
		}
		if vit < 1.0 || vit > 4.5 {
			t.Errorf("M=%d: Viterbi speedup %.2f outside plausible band around the paper's ~2.9x", m, vit)
		}
	}
	msvPeak := msvSpeedup(t, k40, 800, gpu.MemShared, db)
	t.Logf("K40 peaks: MSV %.2f (M=800), Viterbi %.2f", msvPeak, vitPeak)
	if vitPeak >= msvPeak {
		t.Errorf("peak Viterbi speedup %.2f should trail peak MSV %.2f (paper: 2.9x vs 5.4x)", vitPeak, msvPeak)
	}
}

// TestFermiBelowKepler: a single GTX 580 must land near CPU parity
// (the paper: four of them reach 5.6-7.8x combined).
func TestFermiBelowKepler(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel simulation is slow")
	}
	rng := rand.New(rand.NewSource(3))
	db := smallDB(rng, 200, 220)
	k := msvSpeedup(t, simt.TeslaK40(), 400, gpu.MemAuto, db)
	f := msvSpeedup(t, simt.GTX580(), 400, gpu.MemAuto, db)
	t.Logf("MSV M=400: K40 %.2f, GTX580 %.2f", k, f)
	if f >= k {
		t.Errorf("Fermi speedup %.2f should trail Kepler %.2f", f, k)
	}
	if f < 0.7 || f > 3.5 {
		t.Errorf("single-Fermi MSV speedup %.2f outside the plausible band", f)
	}
}

func TestIssueEfficiency(t *testing.T) {
	if issueEfficiency(simt.Occupancy{WarpsPerSM: 64}) != 1 {
		t.Error("full occupancy should saturate")
	}
	if issueEfficiency(simt.Occupancy{WarpsPerSM: 24}) != 1 {
		t.Error("saturation point should saturate")
	}
	if got := issueEfficiency(simt.Occupancy{WarpsPerSM: 12}); got != 0.5 {
		t.Errorf("half saturation = %g", got)
	}
	if got := issueEfficiency(simt.Occupancy{WarpsPerSM: 0}); got <= 0 {
		t.Errorf("zero warps should clamp, got %g", got)
	}
}

func TestCPUTimesScaleLinearly(t *testing.T) {
	c := BaselineI5()
	if CPUTimeMSV(c, 2e9) != 2*CPUTimeMSV(c, 1e9) {
		t.Error("MSV time not linear")
	}
	if CPUTimeVit(c, 1e9) <= CPUTimeMSV(c, 1e9) {
		t.Error("Viterbi cells must cost more than MSV cells")
	}
}

func TestGPUTimeBounds(t *testing.T) {
	spec := simt.TeslaK40()
	rep := &simt.LaunchReport{
		Occupancy: simt.Occupancy{WarpsPerSM: 64},
	}
	rep.Stats.IssueCycles = 1e9
	tIssue := GPUTime(spec, rep)
	rep2 := *rep
	rep2.Stats.GlobalBytes = 1e12 // bandwidth-bound
	tMem := GPUTime(spec, &rep2)
	if tMem <= tIssue {
		t.Error("bandwidth-bound launch should take longer")
	}
	if tMem < 1e12/spec.MemBandwidth {
		t.Error("memory time below bandwidth bound")
	}
}

func TestSpeedupGuards(t *testing.T) {
	if Speedup(1, 0) != 0 {
		t.Error("zero gpu time should not divide")
	}
	if Speedup(2, 1) != 2 {
		t.Error("speedup arithmetic")
	}
}

func TestExplain(t *testing.T) {
	spec := simt.TeslaK40()
	rep := &simt.LaunchReport{Occupancy: simt.Occupancy{WarpsPerSM: 64, Fraction: 1, Limiter: "warps"}}
	rep.Stats.IssueCycles = 1e8
	got := Explain(spec, rep)
	for _, want := range []string{"issue-bound", "Tesla K40", "100%"} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain() = %q, missing %q", got, want)
		}
	}
	rep.Stats.GlobalBytes = 1e13
	if got := Explain(spec, rep); !strings.Contains(got, "DRAM-bandwidth-bound") {
		t.Errorf("Explain() = %q, want DRAM bound", got)
	}
}
